//! Run metrics and traces: everything Tables III/IV and Figures 14/15
//! report.

use crate::process::Pid;
use avfs_sim::series::TimeSeries;
use avfs_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-process completion record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessRecord {
    /// Which process.
    pub pid: Pid,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// Completion time.
    pub finished_at: SimTime,
    /// Threads used.
    pub threads: usize,
    /// Times the process was migrated.
    pub migrations: u32,
}

impl ProcessRecord {
    /// Turnaround time (arrival to completion).
    pub fn turnaround(&self) -> SimDuration {
        self.finished_at.saturating_since(self.arrived_at)
    }
}

/// Metrics of one full system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunMetrics {
    /// Completion time of the whole workload (last process finish), the
    /// "Time (s)" row of Tables III/IV.
    pub makespan: SimDuration,
    /// Total PCP energy over the run, joules.
    pub energy_j: f64,
    /// Time-weighted average power, watts.
    pub avg_power_w: f64,
    /// 1 Hz power trace (Figure 14).
    pub power_trace: TimeSeries,
    /// 1 Hz running-thread-count trace (Figure 15's load line, before the
    /// 1-minute moving average).
    pub load_trace: TimeSeries,
    /// 1 Hz count of running CPU-intensive processes (Figure 15).
    pub cpu_class_trace: TimeSeries,
    /// 1 Hz count of running memory-intensive processes (Figure 15).
    pub mem_class_trace: TimeSeries,
    /// Completion records, in finish order.
    pub completed: Vec<ProcessRecord>,
    /// Total process migrations.
    pub migrations: u64,
    /// Voltage changes applied through SLIMpro.
    pub voltage_changes: u64,
    /// Time (seconds) spent with the rail below the safe Vmin of the
    /// live configuration — must be 0 for a correct policy.
    pub unsafe_time_s: f64,
    /// Failure events injected while operating below safe Vmin.
    pub failures: u64,
}

impl RunMetrics {
    /// Energy–delay-squared product `E × D²` (J·s²), the paper's
    /// server-grade efficiency metric (§V-B).
    pub fn ed2p(&self) -> f64 {
        let d = self.makespan.as_secs_f64();
        self.energy_j * d * d
    }

    /// Energy–delay product `E × D` (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.makespan.as_secs_f64()
    }

    /// Mean turnaround across completed processes, seconds.
    pub fn mean_turnaround_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|r| r.turnaround().as_secs_f64())
            .sum::<f64>()
            / self.completed.len() as f64
    }

    /// Relative energy savings of `self` versus a baseline run
    /// (positive = this run used less energy).
    pub fn energy_savings_vs(&self, baseline: &RunMetrics) -> f64 {
        if baseline.energy_j <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_j / baseline.energy_j
    }

    /// Relative makespan increase versus a baseline run
    /// (positive = this run was slower).
    pub fn time_penalty_vs(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.makespan.as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        self.makespan.as_secs_f64() / b - 1.0
    }

    /// Relative ED2P savings versus a baseline run.
    pub fn ed2p_savings_vs(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.ed2p();
        if b <= 0.0 {
            return 0.0;
        }
        1.0 - self.ed2p() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(energy: f64, secs: u64) -> RunMetrics {
        RunMetrics {
            makespan: SimDuration::from_secs(secs),
            energy_j: energy,
            avg_power_w: energy / secs as f64,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn ed2p_and_edp() {
        let m = metrics(100.0, 10);
        assert!((m.edp() - 1_000.0).abs() < 1e-9);
        assert!((m.ed2p() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn savings_comparisons() {
        let base = metrics(1_000.0, 100);
        let better = metrics(750.0, 103);
        assert!((better.energy_savings_vs(&base) - 0.25).abs() < 1e-12);
        assert!((better.time_penalty_vs(&base) - 0.03).abs() < 1e-12);
        let ed2p_savings = better.ed2p_savings_vs(&base);
        // 0.75 × 1.03² ≈ 0.7957 → ≈20.4 % ED2P savings.
        assert!((ed2p_savings - (1.0 - 0.75 * 1.03 * 1.03)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_baselines_dont_divide_by_zero() {
        let base = RunMetrics::default();
        let m = metrics(10.0, 1);
        assert_eq!(m.energy_savings_vs(&base), 0.0);
        assert_eq!(m.time_penalty_vs(&base), 0.0);
        assert_eq!(m.ed2p_savings_vs(&base), 0.0);
    }

    #[test]
    fn turnaround_and_mean() {
        let mut m = metrics(1.0, 10);
        assert_eq!(m.mean_turnaround_s(), 0.0);
        m.completed.push(ProcessRecord {
            pid: Pid(1),
            arrived_at: SimTime::from_secs(0),
            finished_at: SimTime::from_secs(30),
            threads: 1,
            migrations: 0,
        });
        m.completed.push(ProcessRecord {
            pid: Pid(2),
            arrived_at: SimTime::from_secs(10),
            finished_at: SimTime::from_secs(20),
            threads: 2,
            migrations: 1,
        });
        assert_eq!(m.completed[0].turnaround(), SimDuration::from_secs(30));
        assert!((m.mean_turnaround_s() - 20.0).abs() < 1e-12);
    }
}
