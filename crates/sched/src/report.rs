//! A single result-reporting surface for run artifacts.
//!
//! `exp`, `avfs-analyze --format json`, and the bench harness each used
//! to hand-roll their own serialization of [`RunMetrics`] (and of the
//! daemon/fleet summaries in downstream crates). [`Report`] unifies
//! the three operations every consumer needs: a deterministic
//! fingerprint for byte-identity comparisons, a flat JSON object for
//! machine consumption, and labeled rows for human-readable tables.
//!
//! All renderings are deterministic by construction: key sets are
//! static, floats are either formatted with `{}` (shortest round-trip
//! representation, locale-independent) or digested via `to_bits`, and
//! collections are traversed in their stored (already deterministic)
//! order.

use crate::metrics::RunMetrics;

/// Uniform reporting surface for run results ([`RunMetrics`], and
/// `DaemonStats` / `FleetSummary` in the crates that own them).
pub trait Report {
    /// A deterministic digest of everything observable in the result.
    /// Two runs are byte-identical in this surface iff their
    /// fingerprints match (floats are compared via `to_bits`, so even
    /// sub-ulp drift is caught).
    fn fingerprint(&self) -> String;

    /// The result as one flat JSON object with a static key set.
    fn to_json(&self) -> String;

    /// Labeled `(name, value)` rows for a human-readable summary table.
    fn summary_table(&self) -> Vec<(&'static str, String)>;
}

impl Report for RunMetrics {
    fn fingerprint(&self) -> String {
        // Completion records folded positionally so the digest covers
        // every record without rendering them all.
        let mut rec_fold: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.completed {
            for v in [
                r.pid.0,
                r.arrived_at.as_nanos(),
                r.finished_at.as_nanos(),
                r.threads as u64,
                u64::from(r.migrations),
            ] {
                rec_fold = (rec_fold ^ v).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!(
            "makespan_ns={} energy={:016x} avg_power={:016x} completed={} \
             records={rec_fold:016x} migrations={} vchanges={} unsafe={:016x} failures={}",
            self.makespan.as_nanos(),
            self.energy_j.to_bits(),
            self.avg_power_w.to_bits(),
            self.completed.len(),
            self.migrations,
            self.voltage_changes,
            self.unsafe_time_s.to_bits(),
            self.failures,
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"makespan_s\":{},\"energy_j\":{},\"avg_power_w\":{},\"ed2p\":{},\
             \"completed\":{},\"migrations\":{},\"voltage_changes\":{},\
             \"unsafe_time_s\":{},\"failures\":{},\"mean_turnaround_s\":{}}}",
            self.makespan.as_secs_f64(),
            self.energy_j,
            self.avg_power_w,
            self.ed2p(),
            self.completed.len(),
            self.migrations,
            self.voltage_changes,
            self.unsafe_time_s,
            self.failures,
            self.mean_turnaround_s(),
        )
    }

    fn summary_table(&self) -> Vec<(&'static str, String)> {
        vec![
            ("makespan_s", format!("{:.3}", self.makespan.as_secs_f64())),
            ("energy_j", format!("{:.3}", self.energy_j)),
            ("avg_power_w", format!("{:.3}", self.avg_power_w)),
            ("ed2p", format!("{:.3}", self.ed2p())),
            ("completed", self.completed.len().to_string()),
            ("migrations", self.migrations.to_string()),
            ("voltage_changes", self.voltage_changes.to_string()),
            ("unsafe_time_s", format!("{:.3}", self.unsafe_time_s)),
            ("failures", self.failures.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ProcessRecord;
    use crate::process::Pid;
    use avfs_sim::time::{SimDuration, SimTime};

    fn sample() -> RunMetrics {
        RunMetrics {
            makespan: SimDuration::from_secs(10),
            energy_j: 123.5,
            avg_power_w: 12.35,
            completed: vec![ProcessRecord {
                pid: Pid(7),
                arrived_at: SimTime::from_secs(1),
                finished_at: SimTime::from_secs(4),
                threads: 2,
                migrations: 1,
            }],
            migrations: 1,
            voltage_changes: 3,
            unsafe_time_s: 0.0,
            failures: 0,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_sub_ulp_energy_changes() {
        let a = sample();
        let mut b = sample();
        assert_eq!(Report::fingerprint(&a), Report::fingerprint(&b));
        b.energy_j = f64::from_bits(b.energy_j.to_bits() + 1);
        assert_ne!(Report::fingerprint(&a), Report::fingerprint(&b));
    }

    #[test]
    fn json_is_a_flat_object_with_static_keys() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in ["makespan_s", "energy_j", "completed", "failures"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
    }

    #[test]
    fn summary_table_rows_match_the_metric_surface() {
        let rows = sample().summary_table();
        assert_eq!(rows[0].0, "makespan_s");
        assert!(rows.iter().any(|(k, v)| *k == "completed" && v == "1"));
    }
}
