//! Per-PMD cpufreq governors.
//!
//! The paper's Baseline and Safe-Vmin configurations run Linux's
//! `ondemand` governor; the Placement and Optimal configurations disable
//! it ("ondemand governor disabled", §VI-B) and let the daemon set
//! frequencies directly — modelled as the `Userspace` mode.

use avfs_chip::freq::FreqStep;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which entity controls per-PMD frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GovernorMode {
    /// Kernel `ondemand`: busy PMDs ramp to fmax, idle PMDs drop to the
    /// lowest step. (On CPPC hardware the kernel requests a continuous
    /// performance level; busy periods saturate it, which is why Baseline
    /// effectively runs at fmax under load.)
    Ondemand,
    /// Always the maximum step.
    Performance,
    /// Always the minimum step.
    Powersave,
    /// Frequencies are whatever software last requested (the daemon's
    /// mode; the governor never overrides).
    Userspace,
}

impl GovernorMode {
    /// The step this governor wants for a PMD with the given business,
    /// or `None` if the governor does not override (Userspace).
    pub fn desired_step(self, pmd_busy: bool) -> Option<FreqStep> {
        match self {
            GovernorMode::Ondemand => Some(if pmd_busy {
                FreqStep::MAX
            } else {
                FreqStep::MIN
            }),
            GovernorMode::Performance => Some(FreqStep::MAX),
            GovernorMode::Powersave => Some(FreqStep::MIN),
            GovernorMode::Userspace => None,
        }
    }
}

impl fmt::Display for GovernorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GovernorMode::Ondemand => "ondemand",
            GovernorMode::Performance => "performance",
            GovernorMode::Powersave => "powersave",
            GovernorMode::Userspace => "userspace",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ondemand_tracks_business() {
        assert_eq!(
            GovernorMode::Ondemand.desired_step(true),
            Some(FreqStep::MAX)
        );
        assert_eq!(
            GovernorMode::Ondemand.desired_step(false),
            Some(FreqStep::MIN)
        );
    }

    #[test]
    fn fixed_governors() {
        assert_eq!(
            GovernorMode::Performance.desired_step(false),
            Some(FreqStep::MAX)
        );
        assert_eq!(
            GovernorMode::Powersave.desired_step(true),
            Some(FreqStep::MIN)
        );
    }

    #[test]
    fn userspace_never_overrides() {
        assert_eq!(GovernorMode::Userspace.desired_step(true), None);
        assert_eq!(GovernorMode::Userspace.desired_step(false), None);
    }

    #[test]
    fn names_match_linux() {
        assert_eq!(GovernorMode::Ondemand.to_string(), "ondemand");
        assert_eq!(GovernorMode::Userspace.to_string(), "userspace");
    }
}
