//! The full-system simulator.
//!
//! [`System`] binds a [`Chip`], the analytic performance model, and a
//! process table into a deterministic discrete-event simulation. Between
//! events every quantity is piecewise constant, so energy integration and
//! completion times are exact:
//!
//! * process progress accrues at `1 / T(config)` per second, where `T` is
//!   the analytic execution time under the current frequency, contention,
//!   and clustering conditions;
//! * PCP power is evaluated from the per-PMD loads and integrated over
//!   each slice;
//! * the PMU accrues cycles / instructions / L3 accesses per process, and
//!   droop events chip-wide, which is everything the daemon observes.
//!
//! Events: job arrivals (from a [`WorkloadTrace`]), process completions,
//! monitoring windows (classification), trace sampling, and migration
//! stalls ending. On arrival / completion / class-change events the
//! configured [`Driver`] is consulted and its [`Action`]s applied —
//! including the paper's fail-safe ordering, because actions apply in
//! order within one event.

use crate::driver::{Action, Driver, FaultNotice, ProcessView, SysEvent, SystemView};
use crate::governor::GovernorMode;
use crate::metrics::{ProcessRecord, RunMetrics};
use crate::process::{Pid, Process, ProcessState};
use avfs_chip::chip::Chip;
use avfs_chip::error::ChipError;
use avfs_chip::power::{PmdLoad, PowerInputs};
use avfs_chip::topology::{CoreId, CoreSet, PmdId};
use avfs_chip::FreqStep;
use avfs_sim::stats::TimeWeighted;
use avfs_sim::time::{SimDuration, SimTime};
use avfs_sim::RngStream;
use avfs_telemetry::{Telemetry, TraceKind, Value};
use avfs_workloads::classify::{HysteresisClassifier, IntensityClass};
use avfs_workloads::generator::WorkloadTrace;
use avfs_workloads::perf::PerfModel;
use avfs_workloads::phases;
use std::collections::{BTreeMap, VecDeque};

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Trace sampling cadence (Figures 14/15 use 1 s).
    pub sample_interval: SimDuration,
    /// Monitoring window (the paper's 1 M-cycle counter window lands at
    /// 300–500 ms wall time; we use 400 ms).
    pub monitor_interval: SimDuration,
    /// Pause a process suffers when migrated.
    pub migration_pause: SimDuration,
    /// When true, operating below the safe Vmin injects failures drawn
    /// from the chip's failure model (used by ablations); when false,
    /// unsafe time is only recorded.
    pub inject_failures: bool,
    /// Root seed for the simulator's stochastic models (droops,
    /// failures).
    pub seed: u64,
    /// Classification threshold, L3 accesses per 1M cycles (the paper's
    /// 3000 by default; ablations sweep it).
    pub l3c_threshold: f64,
}

/// How long a hung migration stalls if nothing rescues it. Far beyond
/// any watchdog threshold, but finite so an undefended run still
/// terminates (monitor ticks keep the event loop alive meanwhile).
const HANG_STALL: SimDuration = SimDuration::from_secs(3_600);

/// Bound on synchronous fault-feedback rounds per event: each round
/// re-consults the driver with the [`SysEvent::OperationFault`]s its
/// previous actions provoked. Deep enough for a retry ladder to reach
/// safe mode, shallow enough to guarantee termination even against a
/// driver that retries forever at a 100% fault rate.
const FAULT_FEEDBACK_ROUNDS: usize = 8;

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            sample_interval: SimDuration::from_secs(1),
            monitor_interval: SimDuration::from_millis(400),
            migration_pause: SimDuration::from_millis(2),
            inject_failures: false,
            seed: 0xAE5F,
            l3c_threshold: avfs_workloads::classify::L3C_THRESHOLD_PER_MCYCLE,
        }
    }
}

/// Per-process effective conditions at one instant:
/// `(progress rate per second, min thread freq MHz, mem_mult)`.
type Cond = (f64, u32, f64);

/// Looks up `pid` in a pid-sorted conditions slice.
fn cond_of(conds: &[(Pid, Cond)], pid: Pid) -> Option<Cond> {
    conds
        .binary_search_by_key(&pid, |(p, _)| *p)
        .ok()
        .map(|i| conds[i].1)
}

/// One running process's contribution to the slice signature: the
/// complete set of per-process inputs that progress rates, power, and
/// safety are a function of. Progress enters only through the discrete
/// phase index — [`phases::effective_profile`] is piecewise constant in
/// progress, so two instants with equal signatures (and equal chip
/// epochs) yield bit-identical conditions and power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SigEntry {
    pid: Pid,
    assigned: CoreSet,
    phase: u32,
    stalled: bool,
}

/// Slice-invariant quantities memoized between change points: power,
/// safety, and the droop classification of the current allocation. Valid
/// only while the signature (process set, placement, phases, stalls),
/// the chip's state epoch, and the droop alert all match — i.e. until
/// the next V/F/allocation/arrival/finish/phase boundary.
#[derive(Debug, Default)]
struct SliceCache {
    valid: bool,
    chip_epoch: u64,
    droop_alert: bool,
    /// Instantaneous chip power for the slice.
    watts: f64,
    /// True when the rail sits below the allocation's safe Vmin.
    unsafe_active: bool,
    /// Sub-Vmin failure probability per unit run (0 unless unsafe and
    /// failure injection is on).
    p_per_run: f64,
    /// PMDs utilized by the current allocation (drives the droop class).
    utilized: usize,
}

/// Per-process memo for the PMU observables of a slice, keyed on the
/// end-of-slice phase plus the frequency/contention pair from the
/// conditions. Unlike [`SliceCache`] (start-of-slice state), these
/// follow the progress *after* integration, so they get their own keys.
#[derive(Debug, Clone, Copy)]
struct PmuMemoEntry {
    pid: Pid,
    phase: u32,
    freq: u32,
    mult_bits: u64,
    l3_rate: f64,
    act: f64,
}

/// Reusable hot-path buffers, cleared and refilled per event instead of
/// re-allocated. Pure caches of capacity — nothing in here survives an
/// event observably, so dropping the whole struct between any two events
/// would not change a single output byte. (The [`SliceCache`] inside is
/// a pure memo with the same property: every cached value is recomputed
/// bit-identically on a miss.)
#[derive(Debug, Default)]
struct Scratch {
    /// Pid-sorted per-process conditions for the current instant.
    conds: Vec<(Pid, Cond)>,
    /// Core-index → owning pid, for L2-partner lookups.
    owner: Vec<Option<Pid>>,
    /// Recycled driver snapshot (its vecs keep their capacity).
    view: Option<SystemView>,
    /// Pids finishing at the current instant.
    finished: Vec<Pid>,
    /// Per-PMD load accumulator for power evaluation.
    loads: Vec<PmdLoad>,
    /// Per-PMD activity accumulator for power evaluation.
    act_sum: Vec<f64>,
    /// Free cores considered by default admission.
    free: Vec<CoreId>,
    /// Governor frequency-step decisions staged before application.
    steps: Vec<(PmdId, FreqStep)>,
    /// Signature the slice cache was computed under.
    sig: Vec<SigEntry>,
    /// Signature being probed this iteration (swapped with `sig`).
    sig_next: Vec<SigEntry>,
    /// Memoized slice-invariant power/safety quantities.
    slice: SliceCache,
    /// Per-process PMU observables memo (aligned with `conds`).
    pmu_memo: Vec<PmuMemoEntry>,
    /// Fault notices produced by the current action batch.
    notices: Vec<FaultNotice>,
    /// Fault notices accumulating for the next feedback round.
    notices_next: Vec<FaultNotice>,
    /// Class changes from the monitoring window being closed.
    class_changes: Vec<(Pid, IntensityClass)>,
}

/// Per-process monitoring state.
#[derive(Debug, Clone)]
struct MonitorState {
    classifier: HysteresisClassifier,
    window_start_cycles: u64,
    window_start_l3: u64,
    last_rate: Option<f64>,
}

/// The full-system simulator.
#[derive(Debug)]
pub struct System {
    chip: Chip,
    perf: PerfModel,
    config: SystemConfig,
    now: SimTime,
    procs: BTreeMap<Pid, Process>,
    queue: VecDeque<Pid>,
    governor: GovernorMode,
    next_pid: u64,
    monitors: BTreeMap<Pid, MonitorState>,
    energy_j: f64,
    power_acc: TimeWeighted,
    droop_rng: RngStream,
    failure_rng: RngStream,
    unsafe_time_s: f64,
    failures: u64,
    migrations: u64,
    rejected_actions: u64,
    telemetry: Telemetry,
    scratch: Scratch,
    /// When true (the default), power/safety quantities are evaluated
    /// only at change points and reused across the piecewise-constant
    /// slices in between. Disabling forces a full re-evaluation every
    /// slice — the reference path the bit-identity tests compare
    /// against.
    change_point_integration: bool,
}

/// Bookkeeping for an in-progress incremental run (see
/// [`System::begin_run`]). Owns the accruing [`RunMetrics`] plus the
/// monitor/sample deadlines, so a coordinator can interleave
/// [`System::step_until`] and [`System::inject_arrival`] across many
/// systems while each keeps exactly the state [`System::run`] would have.
#[derive(Debug)]
pub struct RunState {
    metrics: RunMetrics,
    next_monitor: SimTime,
    next_sample: SimTime,
    last_finish: SimTime,
    iterations: u64,
}

impl RunState {
    /// The metrics accrued so far (finalized by [`System::finish_run`]).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.metrics.completed.len()
    }

    /// Latest completion time seen so far.
    pub fn last_finish(&self) -> SimTime {
        self.last_finish
    }

    /// Event-loop iterations executed so far — the event count the
    /// throughput benches divide wall time by.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

/// Builder for [`System`] — chip, performance model, configuration,
/// seed, and observer in one fluent construction path (see
/// [`System::builder`]).
#[derive(Debug)]
pub struct SystemBuilder {
    chip: Chip,
    perf: PerfModel,
    config: SystemConfig,
    telemetry: Option<Telemetry>,
}

impl SystemBuilder {
    /// Replaces the whole simulator configuration.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the root seed for the simulator's stochastic models
    /// (overrides the seed inside any [`Self::config`] given earlier).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Routes the system's (and the chip's) decision points through
    /// `telemetry`.
    pub fn observer(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Builds the system.
    pub fn build(self) -> System {
        let SystemBuilder {
            mut chip,
            perf,
            config,
            telemetry,
        } = self;
        if let Some(telemetry) = telemetry {
            chip.set_telemetry(telemetry);
        }
        System::new(chip, perf, config)
    }
}

/// Outcome of applying driver actions (for introspection in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Actions applied successfully.
    pub applied: u32,
    /// Actions rejected (invalid pin, refused voltage, ...).
    pub rejected: u32,
}

impl System {
    /// Creates a system around a chip and its matching performance model.
    /// Inherits whatever telemetry handle the chip already carries (null
    /// by default), so a pre-instrumented chip keeps reporting.
    pub fn new(chip: Chip, perf: PerfModel, config: SystemConfig) -> Self {
        let droop_rng = RngStream::from_root(config.seed, "system-droops");
        let failure_rng = RngStream::from_root(config.seed, "system-failures");
        let telemetry = chip.telemetry().clone();
        System {
            chip,
            perf,
            config,
            now: SimTime::ZERO,
            procs: BTreeMap::new(),
            queue: VecDeque::new(),
            governor: GovernorMode::Ondemand,
            next_pid: 1,
            monitors: BTreeMap::new(),
            energy_j: 0.0,
            power_acc: TimeWeighted::new(SimTime::ZERO, 0.0),
            droop_rng,
            failure_rng,
            unsafe_time_s: 0.0,
            failures: 0,
            migrations: 0,
            rejected_actions: 0,
            telemetry,
            scratch: Scratch::default(),
            change_point_integration: true,
        }
    }

    /// Enables or disables change-point integration (enabled by
    /// default). Disabling re-derives power, conditions, and safety on
    /// every slice instead of only at change points; both modes produce
    /// bit-identical runs — the toggle exists so tests can prove it.
    pub fn set_change_point_integration(&mut self, enabled: bool) {
        self.change_point_integration = enabled;
        self.scratch.slice.valid = false;
    }

    /// Starts a [`SystemBuilder`] — the blessed construction path.
    ///
    /// ```
    /// use avfs_chip::presets;
    /// use avfs_sched::system::{System, SystemConfig};
    /// use avfs_workloads::PerfModel;
    ///
    /// let sys = System::builder(presets::xgene2().build(), PerfModel::xgene2())
    ///     .config(SystemConfig::default())
    ///     .seed(42)
    ///     .build();
    /// ```
    pub fn builder(chip: Chip, perf: PerfModel) -> SystemBuilder {
        SystemBuilder {
            chip,
            perf,
            config: SystemConfig::default(),
            telemetry: None,
        }
    }

    /// Creates a system whose decision points (and the chip's mailbox
    /// paths) report through `telemetry`. The observer seam for the
    /// scheduler layer: `System::new` is exactly
    /// `with_observer(..., Telemetry::null())` on an uninstrumented chip.
    #[deprecated(
        note = "use System::builder(chip, perf).config(config).observer(telemetry).build()"
    )]
    pub fn with_observer(
        mut chip: Chip,
        perf: PerfModel,
        config: SystemConfig,
        telemetry: Telemetry,
    ) -> Self {
        chip.set_telemetry(telemetry);
        Self::new(chip, perf, config)
    }

    /// The telemetry handle this system reports through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The chip under simulation.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Mutable access to the chip under simulation — the seam
    /// coordinator-level fault injection uses to arm a [`FaultPlan`]
    /// mid-run (e.g. a fleet "degrade" event pessimizing one node).
    ///
    /// [`FaultPlan`]: avfs_chip::fault::FaultPlan
    /// Direct V/F mutation through this handle bypasses the driver and
    /// is on the caller.
    pub fn chip_mut(&mut self) -> &mut Chip {
        // External mutation may change anything; drop the slice memo so
        // the next slice re-derives power and safety from scratch.
        self.scratch.slice.valid = false;
        &mut self.chip
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Live (waiting or running) process count.
    pub fn live_processes(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state != ProcessState::Finished)
            .count()
    }

    /// Total threads across live (waiting or running) processes — the
    /// load signal cluster-level routing policies balance on.
    pub fn live_threads(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state != ProcessState::Finished)
            .map(|p| p.threads)
            .sum()
    }

    /// Cores currently assigned to running processes.
    pub fn busy_cores(&self) -> CoreSet {
        self.procs
            .values()
            .filter(|p| p.is_running())
            .fold(CoreSet::EMPTY, |acc, p| acc.union(p.assigned))
    }

    /// Submits a job directly (outside a trace); returns its pid.
    pub fn submit(&mut self, bench: avfs_workloads::Benchmark, threads: usize, scale: f64) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let profile = bench.profile();
        let work = self.perf.thread_work(&profile, threads).scaled(scale);
        let proc = Process::new(pid, bench, threads, scale, work, self.now);
        self.procs.insert(pid, proc);
        self.queue.push_back(pid);
        self.monitors.insert(
            pid,
            MonitorState {
                classifier: HysteresisClassifier::new(
                    self.config.l3c_threshold,
                    0.1 * self.config.l3c_threshold,
                ),
                window_start_cycles: 0,
                window_start_l3: 0,
                last_rate: None,
            },
        );
        pid
    }

    /// Replays a workload trace to completion under `driver`, returning
    /// the run metrics. The system must be fresh (no live processes).
    ///
    /// Implemented on the incremental stepping API ([`Self::begin_run`],
    /// [`Self::step_until`], [`Self::inject_arrival`],
    /// [`Self::run_to_completion`], [`Self::finish_run`]), which external
    /// coordinators (the fleet layer) drive directly.
    ///
    /// # Panics
    ///
    /// Panics if called on a system that already has live processes.
    pub fn run(&mut self, trace: &WorkloadTrace, driver: &mut dyn Driver) -> RunMetrics {
        let mut st = self.begin_run(driver);
        let mut arrivals = trace.arrivals.iter().peekable();
        while let Some(a) = arrivals.peek() {
            let t = a.at.max(self.now);
            self.step_until(&mut st, driver, t);
            while let Some(a) = arrivals.peek() {
                if a.at <= self.now {
                    let a = arrivals.next().expect("peeked");
                    self.inject_arrival(&mut st, driver, a.bench, a.threads, a.scale);
                } else {
                    break;
                }
            }
        }
        self.run_to_completion(&mut st, driver);
        self.finish_run(st)
    }

    /// Starts an incremental run: lets the driver initialize (e.g. switch
    /// governor) and returns the bookkeeping that [`Self::step_until`] /
    /// [`Self::run_to_completion`] advance. The system must be fresh.
    ///
    /// # Panics
    ///
    /// Panics if called on a system that already has live processes.
    pub fn begin_run(&mut self, driver: &mut dyn Driver) -> RunState {
        assert!(
            self.live_processes() == 0,
            "begin_run() requires a fresh system; use a new System per run"
        );
        let mut st = RunState {
            metrics: RunMetrics::default(),
            next_monitor: self.now + self.config.monitor_interval,
            next_sample: self.now,
            last_finish: self.now,
            iterations: 0,
        };
        self.dispatch(driver, SysEvent::MonitorTick, &mut st.metrics);
        self.apply_governor();
        st
    }

    /// Submits a job mid-run as if it arrived from a trace at the current
    /// simulation time: the driver sees [`SysEvent::ProcessArrived`],
    /// admission runs, and the governor is re-applied. Returns the pid.
    pub fn inject_arrival(
        &mut self,
        st: &mut RunState,
        driver: &mut dyn Driver,
        bench: avfs_workloads::Benchmark,
        threads: usize,
        scale: f64,
    ) -> Pid {
        let pid = self.submit(bench, threads, scale);
        self.dispatch(driver, SysEvent::ProcessArrived(pid), &mut st.metrics);
        self.try_admit();
        self.apply_governor();
        pid
    }

    /// Advances the simulation to exactly `horizon`, processing every
    /// internal event (completions, monitor windows, samples, stall ends)
    /// due strictly *before* it. Events due exactly at `horizon` are left
    /// pending and fire at the start of the next stepping call — after any
    /// [`Self::inject_arrival`] at `horizon` — which preserves the
    /// arrivals-before-completions ordering of [`Self::run`] and gives
    /// epoch-driven coordinators a deterministic injection point.
    pub fn step_until(&mut self, st: &mut RunState, driver: &mut dyn Driver, horizon: SimTime) {
        loop {
            if self.now >= horizon {
                return;
            }
            self.bump_iterations(st);
            self.process_due(st, driver);

            // Conditions are validated (and recomputed only at change
            // points) once per iteration, then shared by the
            // completion-time scan and the slice integration below —
            // nothing between the two mutates state they depend on.
            self.refresh_slice();
            let conds = std::mem::take(&mut self.scratch.conds);

            // Candidate next event times, capped at the horizon.
            let mut next = horizon;
            if self.live_processes() > 0 {
                next = next.min(st.next_monitor).min(st.next_sample);
            } else {
                // Sample through idle gaps too, for the Figure 15 traces.
                next = next.min(st.next_sample);
            }
            for p in self.procs.values() {
                if p.is_running() && p.stalled_until > self.now {
                    next = next.min(p.stalled_until);
                }
            }
            if let Some(t) = self.earliest_completion(&conds) {
                next = next.min(t);
            }
            let next = next.max(self.now);

            // Integrate the slice [now, next).
            self.advance_to(next, &conds, &mut st.metrics);
            self.scratch.conds = conds;
        }
    }

    /// Drains the system: processes events until no live process remains.
    /// The counterpart of [`Self::step_until`] once all arrivals are in.
    pub fn run_to_completion(&mut self, st: &mut RunState, driver: &mut dyn Driver) {
        loop {
            if self.live_processes() == 0 {
                return;
            }
            self.bump_iterations(st);
            self.process_due(st, driver);
            if self.live_processes() == 0 {
                return;
            }

            self.refresh_slice();
            let conds = std::mem::take(&mut self.scratch.conds);

            // Candidate next event times (live > 0 here, so the monitor
            // and sampler are always candidates).
            let mut next = st.next_monitor.min(st.next_sample);
            for p in self.procs.values() {
                if p.is_running() && p.stalled_until > self.now {
                    next = next.min(p.stalled_until);
                }
            }
            if let Some(t) = self.earliest_completion(&conds) {
                next = next.min(t);
            }
            assert!(next < SimTime::MAX, "simulation stuck with no next event");
            let next = next.max(self.now);
            self.advance_to(next, &conds, &mut st.metrics);
            self.scratch.conds = conds;
        }
    }

    /// Finalizes an incremental run and returns its metrics.
    pub fn finish_run(&mut self, st: RunState) -> RunMetrics {
        let mut metrics = st.metrics;
        metrics.makespan = st.last_finish.saturating_since(SimTime::ZERO);
        metrics.energy_j = self.energy_j;
        metrics.avg_power_w = if metrics.makespan.as_secs_f64() > 0.0 {
            self.energy_j / metrics.makespan.as_secs_f64()
        } else {
            0.0
        };
        metrics.migrations = self.migrations;
        metrics.voltage_changes = self.chip.mailbox_stats().voltage_changes;
        metrics.unsafe_time_s = self.unsafe_time_s;
        metrics.failures = self.failures;
        metrics
    }

    /// Processes everything due at the current instant, in the fixed
    /// event order: completions, then the monitoring window, then trace
    /// sampling. (Arrivals, when due, are dispatched by the caller before
    /// this runs — see [`Self::step_until`].)
    fn process_due(&mut self, st: &mut RunState, driver: &mut dyn Driver) {
        // Completions.
        let mut finished = std::mem::take(&mut self.scratch.finished);
        finished.clear();
        finished.extend(
            self.procs
                .values()
                .filter(|p| p.is_running() && p.progress >= 1.0 - 1e-9)
                .map(|p| p.pid),
        );
        for &pid in &finished {
            let record = {
                let p = self.procs.get_mut(&pid).expect("finished pid");
                p.state = ProcessState::Finished;
                p.finished_at = Some(self.now);
                p.assigned = CoreSet::EMPTY;
                ProcessRecord {
                    pid,
                    arrived_at: p.arrived_at,
                    finished_at: self.now,
                    threads: p.threads,
                    migrations: p.migrations,
                }
            };
            st.metrics.completed.push(record);
            st.last_finish = self.now;
            self.monitors.remove(&pid);
            self.dispatch(driver, SysEvent::ProcessFinished(pid), &mut st.metrics);
            self.try_admit();
            self.apply_governor();
            // Every observer filters on the Finished state, so dropping
            // the entry now is invisible — and keeps the process table
            // (scanned per slice) from growing with run length.
            self.procs.remove(&pid);
        }
        self.scratch.finished = finished;

        // Monitoring window.
        if self.now >= st.next_monitor {
            st.next_monitor = self.now + self.config.monitor_interval;
            // Advance droop-excursion state *before* the driver is
            // consulted, so an excursion opening at this boundary is
            // visible (via `droop_alert`) in the very view the driver
            // reacts to — no unsafe window ever elapses in sim time.
            if let Some(plan) = self.chip.fault_plan_mut() {
                plan.droop_check();
            }
            self.close_monitor_windows();
            self.dispatch(driver, SysEvent::MonitorTick, &mut st.metrics);
            let changes = std::mem::take(&mut self.scratch.class_changes);
            for &(pid, class) in &changes {
                self.telemetry.trace(TraceKind::Classification, || {
                    vec![
                        ("pid", Value::U64(pid.0)),
                        (
                            "class",
                            Value::Str(match class {
                                IntensityClass::CpuIntensive => "cpu",
                                IntensityClass::MemoryIntensive => "memory",
                            }),
                        ),
                    ]
                });
                self.dispatch(driver, SysEvent::ClassChanged(pid, class), &mut st.metrics);
            }
            self.scratch.class_changes = changes;
            self.apply_governor();
        }

        // Trace sampling.
        if self.now >= st.next_sample {
            st.next_sample = self.now + self.config.sample_interval;
            self.record_sample(&mut st.metrics);
        }
    }

    /// Guards against a wedged event loop.
    fn bump_iterations(&self, st: &mut RunState) {
        st.iterations += 1;
        assert!(
            st.iterations < 2_000_000,
            "event loop stuck at t={} with {} live processes",
            self.now,
            self.live_processes()
        );
    }

    /// Number of driver actions that were rejected as invalid.
    pub fn rejected_actions(&self) -> u64 {
        self.rejected_actions
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Builds the sanitized snapshot for drivers. Allocates fresh
    /// buffers; the dispatch loop recycles one snapshot through
    /// [`Self::fill_view`] instead.
    fn view(&self) -> SystemView {
        let mut view = SystemView {
            now: self.now,
            spec: self.chip.spec().clone(),
            voltage: self.chip.voltage(),
            pmd_steps: Vec::new(),
            governor: self.governor,
            droop_alert: self.chip.droop_excursion_active(),
            processes: Vec::new(),
        };
        self.fill_view(&mut view);
        view
    }

    /// Refreshes a previously-built snapshot in place, reusing its
    /// buffers. Produces exactly the view [`Self::view`] would build.
    fn fill_view(&self, view: &mut SystemView) {
        if view.spec != *self.chip.spec() {
            view.spec = self.chip.spec().clone();
        }
        view.now = self.now;
        view.voltage = self.chip.voltage();
        view.governor = self.governor;
        view.droop_alert = self.chip.droop_excursion_active();
        view.pmd_steps.clear();
        view.pmd_steps.extend(
            self.chip
                .spec()
                .all_pmds()
                .map(|p| self.chip.pmd_freq_step(p).expect("valid pmd")),
        );
        view.processes.clear();
        view.processes.extend(
            self.procs
                .values()
                .filter(|p| p.state != ProcessState::Finished)
                .map(|p| {
                    let mon = self.monitors.get(&p.pid);
                    ProcessView {
                        pid: p.pid,
                        threads: p.threads,
                        state: p.state,
                        assigned: p.assigned,
                        l3c_per_mcycle: mon.and_then(|m| m.last_rate),
                        class: mon.and_then(|m| m.classifier.current()),
                        arrived_at: p.arrived_at,
                        stalled_until: (p.is_running() && p.stalled_until > self.now)
                            .then_some(p.stalled_until),
                    }
                }),
        );
    }

    /// Delivers one event to the driver and applies its plan, then feeds
    /// any transient operation faults back as [`SysEvent::OperationFault`]
    /// events for a bounded number of rounds — the synchronous
    /// request/response loop a real daemon runs against the mailbox.
    /// With no fault plan armed, no notice is ever produced and this is
    /// exactly the old consult-once path.
    fn dispatch(&mut self, driver: &mut dyn Driver, event: SysEvent, metrics: &mut RunMetrics) {
        self.telemetry.advance_to(self.now);
        self.telemetry.counter_inc("sched.events");
        let mut view = match self.scratch.view.take() {
            Some(mut view) => {
                self.fill_view(&mut view);
                view
            }
            None => self.view(),
        };
        let acts = driver.on_event(&view, &event);
        self.telemetry
            .histogram_observe("sched.actions_per_event", acts.len() as u64);
        let event_label = event.label();
        let n_acts = acts.len() as u64;
        self.telemetry.trace(TraceKind::ActionDispatch, || {
            vec![
                ("event", Value::Str(event_label)),
                ("actions", Value::U64(n_acts)),
            ]
        });
        let mut notices = std::mem::take(&mut self.scratch.notices);
        let mut next = std::mem::take(&mut self.scratch.notices_next);
        notices.clear();
        self.apply_actions_into(&acts, metrics, &mut notices);
        for _ in 0..FAULT_FEEDBACK_ROUNDS {
            if notices.is_empty() {
                break;
            }
            next.clear();
            for &notice in &notices {
                self.telemetry.counter_inc("sched.fault_feedback_events");
                self.fill_view(&mut view);
                let acts = driver.on_event(&view, &SysEvent::OperationFault(notice));
                self.apply_actions_into(&acts, metrics, &mut next);
            }
            std::mem::swap(&mut notices, &mut next);
        }
        self.scratch.notices = notices;
        self.scratch.notices_next = next;
        self.scratch.view = Some(view);
    }

    /// Validates the slice memo against the current signature (process
    /// placement, phases, stalls), chip state epoch, and droop alert;
    /// recomputes conditions, power, and safety only on mismatch — i.e.
    /// only at change points. After this returns, `scratch.conds` and
    /// `scratch.slice` describe the slice starting at `self.now`,
    /// bit-identically to an unconditional recompute.
    fn refresh_slice(&mut self) {
        let mut sig_next = std::mem::take(&mut self.scratch.sig_next);
        sig_next.clear();
        sig_next.extend(
            self.procs
                .values()
                .filter(|p| p.is_running())
                .map(|p| SigEntry {
                    pid: p.pid,
                    assigned: p.assigned,
                    phase: phases::phase_index(p.bench, p.progress),
                    stalled: p.stalled_until > self.now,
                }),
        );
        let epoch = self.chip.state_epoch();
        let droop_alert = self.chip.droop_excursion_active();
        let fresh = self.change_point_integration
            && self.scratch.slice.valid
            && self.scratch.slice.chip_epoch == epoch
            && self.scratch.slice.droop_alert == droop_alert
            && sig_next == self.scratch.sig;
        if fresh {
            self.scratch.sig_next = sig_next;
            return;
        }
        std::mem::swap(&mut self.scratch.sig, &mut sig_next);
        self.scratch.sig_next = sig_next;

        let mut conds = std::mem::take(&mut self.scratch.conds);
        let mut owner = std::mem::take(&mut self.scratch.owner);
        let loads = std::mem::take(&mut self.scratch.loads);
        let mut act_sum = std::mem::take(&mut self.scratch.act_sum);

        // One pressure evaluation feeds both the contention multiplier
        // and the memory-traffic term (they always read the same value).
        let pressure = self.total_pressure();
        self.fill_conditions(pressure, &mut conds, &mut owner);
        let inputs = self.power_inputs_into(pressure, &conds, loads, &mut act_sum);
        let watts = self.chip.evaluate_power_w(&inputs);

        let busy = self.busy_cores();
        let unsafe_active = !busy.is_empty() && !self.chip.is_voltage_safe_for(busy);
        let mut p_per_run = 0.0;
        if unsafe_active && self.config.inject_failures {
            let safe = self.chip.current_safe_vmin(busy);
            let class = self
                .chip
                .vmin_model()
                .droop_class(busy.utilized_pmd_count(self.chip.spec()));
            p_per_run = self
                .chip
                .failure_model()
                .pfail(self.chip.voltage(), safe, class);
        }

        self.scratch.conds = conds;
        self.scratch.owner = owner;
        self.scratch.loads = inputs.pmd_loads;
        self.scratch.act_sum = act_sum;
        self.scratch.slice = SliceCache {
            valid: true,
            chip_epoch: epoch,
            droop_alert,
            watts,
            unsafe_active,
            p_per_run,
            utilized: busy.utilized_pmd_count(self.chip.spec()),
        };
    }

    /// Aggregate memory pressure of running processes, accounting for
    /// their current (possibly reduced) core clocks.
    fn total_pressure(&self) -> f64 {
        let fmax = self.chip.spec().fmax_mhz as f64;
        self.procs
            .values()
            .filter(|p| p.is_running())
            .map(|p| {
                let freq = p
                    .assigned
                    .first()
                    .and_then(|c| {
                        let pmd = self.chip.spec().pmd_of(c);
                        self.chip.pmd_frequency(pmd).ok()
                    })
                    .map(|f| f.as_mhz() as f64)
                    .unwrap_or(fmax);
                self.perf.pressure_at(
                    &phases::effective_profile(p.bench, p.progress),
                    (freq / fmax).clamp(1e-6, 1.0),
                ) * p.threads as f64
            })
            .sum()
    }

    /// Computes per-running-process effective conditions for the current
    /// instant into `conds` (pid-sorted), using `owner` as core-owner
    /// scratch for L2-partner lookups.
    fn fill_conditions(
        &self,
        pressure: f64,
        conds: &mut Vec<(Pid, Cond)>,
        owner: &mut Vec<Option<Pid>>,
    ) {
        conds.clear();
        owner.clear();
        let base_mult = self.perf.mem_contention_mult(pressure);
        for p in self.procs.values().filter(|p| p.is_running()) {
            for c in p.assigned.iter() {
                if c.index() >= owner.len() {
                    owner.resize(c.index() + 1, None);
                }
                owner[c.index()] = Some(p.pid);
            }
        }
        for p in self.procs.values().filter(|p| p.is_running()) {
            let mut worst_rate = f64::INFINITY;
            let mut min_freq = u32::MAX;
            let mut worst_mult = base_mult;
            for core in p.assigned.iter() {
                let pmd = self.chip.spec().pmd_of(core);
                let freq = self
                    .chip
                    .pmd_frequency(pmd)
                    .expect("assigned core on valid pmd")
                    .as_mhz();
                let partner_mem = self.l2_partner_mem(core, owner);
                let mult = base_mult * self.perf.l2_share_mult(partner_mem);
                let rate = self.perf.progress_rate(&p.work, freq, mult);
                if rate < worst_rate {
                    worst_rate = rate;
                    worst_mult = mult;
                }
                min_freq = min_freq.min(freq);
            }
            if p.assigned.is_empty() {
                continue;
            }
            let stalled = p.stalled_until > self.now;
            conds.push((
                p.pid,
                (if stalled { 0.0 } else { worst_rate }, min_freq, worst_mult),
            ));
        }
    }

    /// Memory intensity of the process on the other core of `core`'s PMD,
    /// if that core is busy with a *different* thread.
    fn l2_partner_mem(&self, core: CoreId, owner: &[Option<Pid>]) -> Option<f64> {
        let spec = self.chip.spec();
        let pmd = spec.pmd_of(core);
        spec.cores_of_iter(pmd)
            .filter(|&c| c != core)
            .find_map(|c| owner.get(c.index()).copied().flatten())
            .map(|pid| {
                let q = &self.procs[&pid];
                phases::effective_profile(q.bench, q.progress).mem_fraction
            })
    }

    /// The earliest running-process completion time, if any, given the
    /// current conditions.
    fn earliest_completion(&self, conds: &[(Pid, Cond)]) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for &(pid, (rate, _, _)) in conds {
            let p = &self.procs[&pid];
            if p.stalled_until > self.now {
                // Resumes later; completion considered after resume.
                continue;
            }
            if rate <= 0.0 {
                continue;
            }
            // At least 1 ns in the future so the event loop always
            // advances.
            let t = self.now + SimDuration::from_secs_f64((p.remaining() / rate).max(1e-9));
            earliest = Some(match earliest {
                None => t,
                Some(e) => e.min(t),
            });
        }
        earliest
    }

    /// Integrates state forward to `target` (progress, energy, PMU,
    /// droops, safety accounting).
    fn advance_to(&mut self, target: SimTime, conds: &[(Pid, Cond)], metrics: &mut RunMetrics) {
        if target <= self.now {
            return;
        }
        let dt = (target - self.now).as_secs_f64();

        // Power for this slice: piecewise constant, so the value the
        // slice memo captured at the last change point is *the* value
        // for the whole slice — no re-evaluation.
        let watts = self.scratch.slice.watts;
        self.energy_j += watts * dt;
        self.power_acc.set(self.now, watts);

        // Safety accounting (and optional failure injection), also
        // constant across the slice.
        if self.scratch.slice.unsafe_active {
            self.unsafe_time_s += dt;
            if self.config.inject_failures {
                // Treat each second below Vmin as one run opportunity.
                let lam = self.scratch.slice.p_per_run * dt;
                self.failures += self.failure_rng.poisson(lam);
            }
        }

        // Progress + PMU.
        let mut chip_cycles_at_fmax = 0u64;
        let mut activity_sum = 0.0;
        let mut active_threads = 0usize;
        let use_memo = self.change_point_integration;
        let mut memo = std::mem::take(&mut self.scratch.pmu_memo);
        for (i, &(pid, (rate, freq, mult))) in conds.iter().enumerate() {
            let p = self.procs.get_mut(&pid).expect("cond pid");
            let run_dt = if p.stalled_until > self.now {
                // Stall may end inside the slice (slice boundaries include
                // stall ends, so this is exact, not an approximation).
                let resume = p.stalled_until.min(target);
                (target - resume).as_secs_f64()
            } else {
                dt
            };
            if run_dt > 0.0 && rate > 0.0 {
                p.progress = (p.progress + rate * run_dt).min(1.0);
                // Snap to done when the residue is below the event
                // queue's nanosecond resolution — prevents a zero-length
                // event livelock from floating-point rounding.
                if p.remaining() <= rate * 2e-9 {
                    p.progress = 1.0;
                }
            }
            // PMU accrues whenever cores are clocked, stalled or not.
            // Observables follow the program's current phase — sampled
            // *after* the progress update, so they key on the
            // end-of-slice phase, unlike the start-of-slice slice memo.
            let cycles = (freq as f64 * 1e6 * dt) as u64 * p.threads as u64;
            let phase = phases::phase_index(p.bench, p.progress);
            let (l3_rate, act) = match memo.get(i) {
                Some(e)
                    if use_memo
                        && e.pid == pid
                        && e.phase == phase
                        && e.freq == freq
                        && e.mult_bits == mult.to_bits() =>
                {
                    (e.l3_rate, e.act)
                }
                _ => {
                    let profile = phases::effective_profile(p.bench, p.progress);
                    let l3_rate = self.perf.observed_l3c_rate(&profile, mult);
                    let act = self.perf.effective_activity(&profile, &p.work, freq, mult);
                    let entry = PmuMemoEntry {
                        pid,
                        phase,
                        freq,
                        mult_bits: mult.to_bits(),
                        l3_rate,
                        act,
                    };
                    if i < memo.len() {
                        memo[i] = entry;
                    } else {
                        memo.push(entry);
                    }
                    (l3_rate, act)
                }
            };
            let l3 = (cycles as f64 / 1e6 * l3_rate) as u64;
            let instr = (cycles as f64 * act) as u64;
            p.cycles += cycles;
            p.l3_accesses += l3;
            p.instructions += instr;
            // Mirror into the per-core PMU (first assigned core carries
            // the process's counters, as the kernel module reads them).
            if let Some(core) = p.assigned.first() {
                self.chip.pmu_mut().record(core, cycles, instr, l3);
            }
            activity_sum += act * p.threads as f64;
            active_threads += p.threads;
        }
        self.scratch.pmu_memo = memo;

        // Droop events for the slice.
        if active_threads > 0 {
            let class = self
                .chip
                .vmin_model()
                .droop_class(self.scratch.slice.utilized);
            let mean_act = activity_sum / active_threads as f64;
            chip_cycles_at_fmax = (self.chip.spec().fmax_mhz as f64 * 1e6 * dt) as u64;
            let counts = self.chip.droop_model().sample(
                class,
                mean_act,
                chip_cycles_at_fmax,
                &mut self.droop_rng,
            );
            self.chip.pmu_mut().record_droops(&counts);
        }
        let _ = chip_cycles_at_fmax;
        let _ = metrics;

        self.now = target;
    }

    /// Builds the chip power inputs for the current instant. `loads`
    /// moves in and out through the returned [`PowerInputs`] so the
    /// caller can recycle it; `act_sum` is plain scratch. `pressure` is
    /// the caller's [`Self::total_pressure`] evaluation for the instant.
    fn power_inputs_into(
        &self,
        pressure: f64,
        conds: &[(Pid, Cond)],
        mut loads: Vec<PmdLoad>,
        act_sum: &mut Vec<f64>,
    ) -> PowerInputs {
        let spec = self.chip.spec();
        loads.clear();
        loads.resize(spec.pmds() as usize, PmdLoad::IDLE);
        act_sum.clear();
        act_sum.resize(spec.pmds() as usize, 0.0);
        for p in self.procs.values().filter(|p| p.is_running()) {
            let profile = phases::effective_profile(p.bench, p.progress);
            let (_, freq, mult) = cond_of(conds, p.pid).unwrap_or((0.0, 0, 1.0));
            let act = self
                .perf
                .effective_activity(&profile, &p.work, freq.max(1), mult);
            for core in p.assigned.iter() {
                let pmd = spec.pmd_of(core).index();
                loads[pmd].active_cores += 1;
                act_sum[pmd] += act;
            }
        }
        for (i, load) in loads.iter_mut().enumerate() {
            if load.active_cores > 0 {
                load.freq_mhz = self
                    .chip
                    .pmd_frequency(PmdId::new(i as u16))
                    .expect("valid pmd")
                    .as_mhz();
                load.activity = act_sum[i] / load.active_cores as f64;
            }
        }
        PowerInputs {
            voltage: self.chip.voltage(),
            pmd_loads: loads,
            mem_traffic: (pressure / self.perf.mem_capacity).min(1.0),
        }
    }

    /// Applies driver actions in order, appending the transient faults
    /// they hit to `notices` (a caller-recycled buffer). A failed voltage
    /// write aborts the remainder of the batch — the daemon's mailbox
    /// write is synchronous, so a raise that never landed must gate the
    /// reconfiguration it was meant to cover (the fail-safe ordering
    /// survives injected faults precisely because of this cut).
    fn apply_actions_into(
        &mut self,
        actions: &[Action],
        metrics: &mut RunMetrics,
        notices: &mut Vec<FaultNotice>,
    ) {
        let _ = metrics;
        for action in actions {
            match *action {
                Action::PinProcess(pid, cores) => {
                    if self.pin_process(pid, cores) {
                        self.note_action_applied();
                    } else {
                        self.note_action_rejected();
                    }
                }
                Action::SetPmdStep(pmd, step) => {
                    if self.governor == GovernorMode::Userspace {
                        if self.chip.set_pmd_freq_step(pmd, step).is_err() {
                            self.note_action_rejected();
                        } else {
                            self.note_action_applied();
                        }
                    } else {
                        // Kernel governors own the frequency; refuse.
                        self.note_action_rejected();
                    }
                }
                Action::SetVoltage(mv) => match self.chip.set_voltage(mv) {
                    Ok(()) => self.note_action_applied(),
                    Err(ChipError::MailboxRefused { .. }) => {
                        self.telemetry.counter_inc("sched.fault_notices");
                        notices.push(FaultNotice::VoltageRefused(mv));
                        break;
                    }
                    Err(ChipError::MailboxDropped) => {
                        self.telemetry.counter_inc("sched.fault_notices");
                        notices.push(FaultNotice::VoltageDropped(mv));
                        break;
                    }
                    Err(_) => self.note_action_rejected(),
                },
                Action::SetGovernor(mode) => {
                    self.governor = mode;
                    self.apply_governor();
                    self.note_action_applied();
                }
            }
        }
    }

    fn note_action_applied(&mut self) {
        self.telemetry.counter_inc("sched.actions.applied");
    }

    fn note_action_rejected(&mut self) {
        self.rejected_actions += 1;
        self.telemetry.counter_inc("sched.actions.rejected");
    }

    /// Pins (places or migrates) a process; returns false when invalid.
    fn pin_process(&mut self, pid: Pid, cores: CoreSet) -> bool {
        // Validate the target cores exist.
        if cores.iter().any(|c| !self.chip.spec().contains_core(c)) {
            return false;
        }
        let Some(p) = self.procs.get(&pid) else {
            return false;
        };
        if p.state == ProcessState::Finished || cores.len() != p.threads {
            return false;
        }
        // Target cores must be free or already ours.
        let others = self
            .procs
            .values()
            .filter(|q| q.is_running() && q.pid != pid)
            .fold(CoreSet::EMPTY, |acc, q| acc.union(q.assigned));
        if !cores.intersection(others).is_empty() {
            return false;
        }
        let now = self.now;
        let pause = self.config.migration_pause;
        // A daemon-driven migration may hang mid-flight (injected fault).
        // Initial placement of a waiting process never hangs — only the
        // teardown/rebuild of a running process's mapping is at risk.
        let migrating = self
            .procs
            .get(&pid)
            .is_some_and(|p| p.state == ProcessState::Running && p.assigned != cores);
        let hangs = migrating
            && self
                .chip
                .fault_plan_mut()
                .is_some_and(|f| f.sample_migration_hang());
        let p = self.procs.get_mut(&pid).expect("checked above");
        match p.state {
            ProcessState::Waiting => {
                p.state = ProcessState::Running;
                p.started_at = Some(now);
                p.assigned = cores;
                self.queue.retain(|&q| q != pid);
            }
            ProcessState::Running => {
                if p.assigned != cores {
                    p.assigned = cores;
                    p.stalled_until = now + if hangs { HANG_STALL } else { pause };
                    p.migrations += 1;
                    self.migrations += 1;
                } else if p.stalled_until.saturating_since(now) > pause {
                    // Re-pinning a hung process onto the cores it already
                    // holds cancels the stalled migration: the watchdog's
                    // rescue path. The normal migration pause still
                    // applies to the restart.
                    p.stalled_until = now + pause;
                }
            }
            ProcessState::Finished => return false,
        }
        true
    }

    /// Default (kernel-like) placement for still-waiting processes:
    /// spread across PMDs, preferring idle PMDs — the CFS load-balancing
    /// behaviour the paper's Baseline runs under.
    fn try_admit(&mut self) {
        loop {
            let Some(&pid) = self.queue.front() else {
                return;
            };
            let p = &self.procs[&pid];
            if p.state != ProcessState::Waiting {
                self.queue.pop_front();
                continue;
            }
            let threads = p.threads;
            let busy = self.busy_cores();
            let mut free = std::mem::take(&mut self.scratch.free);
            free.clear();
            let chosen = {
                let spec = self.chip.spec();
                free.extend(spec.all_cores().filter(|&c| !busy.contains(c)));
                if free.len() < threads {
                    None // head-of-line blocks until cores free up
                } else {
                    // Order: idle-PMD cores first, then by PMD occupancy.
                    free.sort_by_key(|&c| {
                        let pmd = spec.pmd_of(c);
                        let occupancy = spec
                            .cores_of_iter(pmd)
                            .filter(|&x| busy.contains(x))
                            .count();
                        (occupancy, pmd.index(), c.index())
                    });
                    Some(free.iter().take(threads).copied().collect::<CoreSet>())
                }
            };
            self.scratch.free = free;
            let Some(chosen) = chosen else {
                return;
            };
            // pin_process transitions the process to Running and removes
            // it from the queue itself.
            let ok = self.pin_process(pid, chosen);
            debug_assert!(ok, "default placement must be valid");
        }
    }

    /// Re-asserts the kernel governor's frequency choices.
    fn apply_governor(&mut self) {
        if self.governor == GovernorMode::Userspace {
            return;
        }
        let busy = self.busy_cores();
        let mut steps = std::mem::take(&mut self.scratch.steps);
        steps.clear();
        {
            let spec = self.chip.spec();
            for pmd in spec.all_pmds() {
                let pmd_busy = spec.cores_of_iter(pmd).any(|c| busy.contains(c));
                if let Some(step) = self.governor.desired_step(pmd_busy) {
                    steps.push((pmd, step));
                }
            }
        }
        for &(pmd, step) in &steps {
            self.chip
                .set_pmd_freq_step(pmd, step)
                .expect("governor uses valid pmds");
        }
        self.scratch.steps = steps;
    }

    /// Closes monitoring windows; processes whose class flipped are left
    /// in `scratch.class_changes` for the caller to dispatch.
    fn close_monitor_windows(&mut self) {
        let mut changes = std::mem::take(&mut self.scratch.class_changes);
        changes.clear();
        for (pid, mon) in self.monitors.iter_mut() {
            let Some(p) = self.procs.get(pid) else {
                continue;
            };
            if !p.is_running() {
                continue;
            }
            let cycles = p.cycles - mon.window_start_cycles;
            let l3 = p.l3_accesses - mon.window_start_l3;
            mon.window_start_cycles = p.cycles;
            mon.window_start_l3 = p.l3_accesses;
            if cycles < 100_000 {
                continue; // window too small to classify
            }
            // An injected PMU glitch corrupts what this window reads
            // (saturated or dropped-out L3 counter); the classifier's
            // hysteresis is the daemon's defence against the resulting
            // churn.
            let (cycles, l3) = self
                .chip
                .fault_plan_mut()
                .and_then(|f| f.sample_pmu_glitch(cycles, l3))
                .unwrap_or((cycles, l3));
            let rate = l3 as f64 * 1e6 / cycles as f64;
            mon.last_rate = Some(rate);
            let before = mon.classifier.current();
            let after = mon.classifier.observe(rate);
            // The first classification is a change too — the daemon
            // treats unmeasured processes as CPU-intensive, so learning
            // otherwise must trigger a replan.
            if before != Some(after) {
                changes.push((*pid, after));
            }
        }
        self.scratch.class_changes = changes;
    }

    /// Records one trace sample (Figures 14/15).
    fn record_sample(&mut self, metrics: &mut RunMetrics) {
        self.refresh_slice();
        let watts = self.scratch.slice.watts;
        metrics.power_trace.push(self.now, watts);
        let running_threads: usize = self
            .procs
            .values()
            .filter(|p| p.is_running())
            .map(|p| p.threads)
            .sum();
        self.telemetry.advance_to(self.now);
        let voltage_mv = self.chip.voltage().as_mv();
        self.telemetry.trace(TraceKind::MonitorSample, || {
            vec![
                ("power_w", Value::F64(watts)),
                ("voltage_mv", Value::U64(u64::from(voltage_mv))),
                ("running_threads", Value::U64(running_threads as u64)),
            ]
        });
        metrics.load_trace.push(self.now, running_threads as f64);
        let (mut cpu, mut mem) = (0u32, 0u32);
        for p in self.procs.values().filter(|p| p.is_running()) {
            match self
                .monitors
                .get(&p.pid)
                .and_then(|m| m.classifier.current())
            {
                Some(IntensityClass::MemoryIntensive) => mem += 1,
                Some(IntensityClass::CpuIntensive) | None => cpu += 1,
            }
        }
        metrics.cpu_class_trace.push(self.now, cpu as f64);
        metrics.mem_class_trace.push(self.now, mem as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DefaultPolicy;
    use avfs_chip::presets;
    use avfs_workloads::catalog::Benchmark;
    use avfs_workloads::generator::{Arrival, GeneratorConfig};

    fn small_trace(seed: u64) -> WorkloadTrace {
        let mut cfg = GeneratorConfig::paper_default(8, seed);
        cfg.duration = SimDuration::from_secs(120);
        cfg.job_scale = 0.15;
        WorkloadTrace::generate(&cfg)
    }

    fn xgene2_system() -> System {
        System::new(
            presets::xgene2().build(),
            PerfModel::xgene2(),
            SystemConfig::default(),
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let trace = WorkloadTrace {
            arrivals: vec![Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::SpecNamd,
                threads: 1,
                scale: 0.1,
            }],
            duration: SimDuration::from_secs(60),
        };
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 1);
        // namd at 0.1 scale: ~10 s of work, 3 GHz-reference core time at
        // 2.4 GHz → ~12.4 s; allow the monitor/sample granularity.
        let t = m.makespan.as_secs_f64();
        assert!((12.0..13.5).contains(&t), "makespan {t}s");
        assert!(m.energy_j > 0.0);
        assert_eq!(m.unsafe_time_s, 0.0);
        assert_eq!(m.failures, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace(11);
        let m1 = xgene2_system().run(&trace, &mut DefaultPolicy::ondemand());
        let m2 = xgene2_system().run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m1.energy_j, m2.energy_j);
        assert_eq!(m1.makespan, m2.makespan);
        assert_eq!(m1.completed.len(), m2.completed.len());
    }

    #[test]
    fn step_api_replay_is_bit_identical_to_run() {
        // Driving the incremental stepping API by hand — step to each
        // arrival time, inject, then drain — must reproduce run() to the
        // last bit: run() is itself built on these primitives, and the
        // fleet layer depends on the equivalence.
        let trace = small_trace(23);
        let reference = xgene2_system().run(&trace, &mut DefaultPolicy::ondemand());

        let mut sys = xgene2_system();
        let mut driver = DefaultPolicy::ondemand();
        let mut st = sys.begin_run(&mut driver);
        for a in &trace.arrivals {
            let t = a.at.max(sys.now());
            sys.step_until(&mut st, &mut driver, t);
            sys.inject_arrival(&mut st, &mut driver, a.bench, a.threads, a.scale);
        }
        sys.run_to_completion(&mut st, &mut driver);
        let stepped = sys.finish_run(st);

        assert_eq!(reference.energy_j.to_bits(), stepped.energy_j.to_bits());
        assert_eq!(reference.makespan, stepped.makespan);
        assert_eq!(reference.completed.len(), stepped.completed.len());
        assert_eq!(reference.migrations, stepped.migrations);
        assert_eq!(reference.voltage_changes, stepped.voltage_changes);
        for (a, b) in reference.completed.iter().zip(&stepped.completed) {
            assert_eq!(a.pid, b.pid);
            assert_eq!(a.finished_at, b.finished_at);
        }
    }

    #[test]
    fn change_point_integration_is_bit_identical_to_per_slice() {
        // The slice memo must be a pure optimization: integrating power
        // only at change points has to reproduce the reference path
        // (full re-evaluation every slice) to the last bit, on both
        // chip presets and with failure injection exercising the
        // safety/droop accounting.
        let presets: [(fn() -> avfs_chip::presets::ChipBuilder, PerfModel); 2] = [
            (presets::xgene2, PerfModel::xgene2()),
            (presets::xgene3, PerfModel::xgene3()),
        ];
        for (mk_chip, perf) in presets {
            for seed in [11u64, 42, 97] {
                let trace = small_trace(seed);
                let cfg = SystemConfig {
                    inject_failures: true,
                    ..SystemConfig::default()
                };

                let mut reference = System::new(mk_chip().build(), perf.clone(), cfg.clone());
                reference.set_change_point_integration(false);
                let r = reference.run(&trace, &mut DefaultPolicy::ondemand());

                let mut cached = System::new(mk_chip().build(), perf.clone(), cfg.clone());
                cached.set_change_point_integration(true);
                let c = cached.run(&trace, &mut DefaultPolicy::ondemand());

                assert_eq!(r.energy_j.to_bits(), c.energy_j.to_bits(), "seed {seed}");
                assert_eq!(r.makespan, c.makespan, "seed {seed}");
                assert_eq!(r.unsafe_time_s.to_bits(), c.unsafe_time_s.to_bits());
                assert_eq!(r.failures, c.failures, "seed {seed}");
                assert_eq!(r.migrations, c.migrations, "seed {seed}");
                assert_eq!(r.voltage_changes, c.voltage_changes, "seed {seed}");
                assert_eq!(r.power_trace.len(), c.power_trace.len(), "seed {seed}");
                for ((ta, va), (tb, vb)) in r.power_trace.iter().zip(c.power_trace.iter()) {
                    assert_eq!(ta, tb, "seed {seed}");
                    assert_eq!(va.to_bits(), vb.to_bits(), "seed {seed}");
                }
                for (a, b) in r.completed.iter().zip(&c.completed) {
                    assert_eq!(a.pid, b.pid, "seed {seed}");
                    assert_eq!(a.finished_at, b.finished_at, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn idle_stepping_to_intermediate_horizons_still_drains() {
        // Horizons that land between events (an epoch grid rather than
        // the arrival grid) must not wedge or drop work.
        let trace = small_trace(7);
        let mut sys = xgene2_system();
        let mut driver = DefaultPolicy::ondemand();
        let mut st = sys.begin_run(&mut driver);
        let mut i = 0;
        let epoch = SimDuration::from_millis(250);
        let mut horizon = SimTime::ZERO + epoch;
        while i < trace.arrivals.len() {
            sys.step_until(&mut st, &mut driver, horizon);
            while i < trace.arrivals.len() && trace.arrivals[i].at <= sys.now() {
                let a = &trace.arrivals[i];
                sys.inject_arrival(&mut st, &mut driver, a.bench, a.threads, a.scale);
                i += 1;
            }
            horizon += epoch;
        }
        sys.run_to_completion(&mut st, &mut driver);
        let m = sys.finish_run(st);
        assert_eq!(m.completed.len(), trace.len());
        assert_eq!(sys.live_processes(), 0);
        assert!(m.energy_j > 0.0);
    }

    #[test]
    fn all_jobs_complete_and_metrics_are_consistent() {
        let trace = small_trace(3);
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), trace.len());
        assert_eq!(sys.live_processes(), 0);
        // Energy equals avg power times makespan by construction.
        let expect = m.avg_power_w * m.makespan.as_secs_f64();
        assert!((m.energy_j - expect).abs() < 1e-6 * m.energy_j.max(1.0));
        // ED2P is consistent.
        let d = m.makespan.as_secs_f64();
        assert!((m.ed2p() - m.energy_j * d * d).abs() < 1e-6 * m.ed2p().max(1.0));
    }

    #[test]
    fn memory_job_is_classified_memory_intensive() {
        let trace = WorkloadTrace {
            arrivals: vec![Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::SpecMilc,
                threads: 1,
                scale: 0.2,
            }],
            duration: SimDuration::from_secs(60),
        };
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 1);
        // The mem-class trace should have seen a memory-intensive process.
        assert!(m.mem_class_trace.max().unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn parallel_job_occupies_multiple_cores() {
        let trace = WorkloadTrace {
            arrivals: vec![Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::NpbEp,
                threads: 4,
                scale: 0.1,
            }],
            duration: SimDuration::from_secs(120),
        };
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 1);
        assert!(m.load_trace.max().unwrap_or(0.0) >= 4.0);
        // Default placement spreads 4 threads over 4 PMDs: power trace
        // must exist and be positive.
        assert!(m.power_trace.max().unwrap_or(0.0) > 1.0);
    }

    #[test]
    fn ondemand_idles_between_jobs() {
        // Two jobs separated by a long idle gap: average power must dip
        // towards idle between them.
        let trace = WorkloadTrace {
            arrivals: vec![
                Arrival {
                    at: SimTime::ZERO,
                    bench: Benchmark::SpecHmmer,
                    threads: 1,
                    scale: 0.05,
                },
                Arrival {
                    at: SimTime::from_secs(60),
                    bench: Benchmark::SpecHmmer,
                    threads: 1,
                    scale: 0.05,
                },
            ],
            duration: SimDuration::from_secs(120),
        };
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 2);
        // Idle-gap samples exist with near-idle power.
        let idle_w = presets::xgene2()
            .build()
            .power_model()
            .idle_power_w(avfs_chip::Millivolts::new(980), 4);
        let min_sample = m
            .power_trace
            .values()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            (min_sample - idle_w).abs() < 0.5,
            "min sample {min_sample} vs idle {idle_w}"
        );
    }

    #[test]
    fn contention_slows_jobs_down() {
        // One milc copy vs eight: per-instance time must grow.
        let solo_trace = WorkloadTrace {
            arrivals: vec![Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::SpecMilc,
                threads: 1,
                scale: 0.1,
            }],
            duration: SimDuration::from_secs(600),
        };
        let full_trace = WorkloadTrace {
            arrivals: (0..8)
                .map(|_| Arrival {
                    at: SimTime::ZERO,
                    bench: Benchmark::SpecMilc,
                    threads: 1,
                    scale: 0.1,
                })
                .collect(),
            duration: SimDuration::from_secs(600),
        };
        let solo = xgene2_system().run(&solo_trace, &mut DefaultPolicy::ondemand());
        let full = xgene2_system().run(&full_trace, &mut DefaultPolicy::ondemand());
        assert!(
            full.makespan.as_secs_f64() > 1.5 * solo.makespan.as_secs_f64(),
            "full {} vs solo {}",
            full.makespan,
            solo.makespan
        );
    }

    #[test]
    fn queueing_defers_jobs_beyond_capacity() {
        // Nine single-thread jobs on eight cores: one must wait.
        let trace = WorkloadTrace {
            arrivals: (0..9)
                .map(|_| Arrival {
                    at: SimTime::ZERO,
                    bench: Benchmark::SpecGamess,
                    threads: 1,
                    scale: 0.05,
                })
                .collect(),
            duration: SimDuration::from_secs(600),
        };
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 9);
        assert!(m.load_trace.max().unwrap_or(0.0) <= 8.0);
        // The ninth job's turnaround exceeds the others'.
        let max_turnaround = m
            .completed
            .iter()
            .map(|r| r.turnaround().as_secs_f64())
            .fold(0.0f64, f64::max);
        let min_turnaround = m
            .completed
            .iter()
            .map(|r| r.turnaround().as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(max_turnaround > 1.5 * min_turnaround);
    }

    #[test]
    fn nominal_voltage_is_never_unsafe() {
        let trace = small_trace(5);
        let mut sys = xgene2_system();
        let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.unsafe_time_s, 0.0);
        assert_eq!(m.failures, 0);
        assert_eq!(sys.rejected_actions(), 0);
    }

    #[test]
    fn droop_counters_populate() {
        let trace = small_trace(6);
        let mut sys = xgene2_system();
        let _ = sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert!(sys.chip().pmu().droops().total() > 0);
    }

    /// A driver that emits a fixed action list on its first event, for
    /// negative-path tests.
    struct Scripted(Vec<Action>);

    impl crate::driver::Driver for Scripted {
        fn on_event(
            &mut self,
            _view: &crate::driver::SystemView,
            _event: &crate::driver::SysEvent,
        ) -> Vec<Action> {
            std::mem::take(&mut self.0)
        }

        fn name(&self) -> &str {
            "scripted"
        }
    }

    fn tiny_trace() -> WorkloadTrace {
        WorkloadTrace {
            arrivals: vec![Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::SpecHmmer,
                threads: 1,
                scale: 0.02,
            }],
            duration: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn invalid_pins_are_rejected_and_counted() {
        let mut sys = xgene2_system();
        // Pin pid 1 to a nonexistent core, pin an unknown pid, and pin
        // pid 1 with the wrong width.
        let bad_core: CoreSet = [63u16].iter().map(|&i| CoreId::new(i)).collect();
        let two_cores: CoreSet = [0u16, 1].iter().map(|&i| CoreId::new(i)).collect();
        let mut driver = Scripted(vec![
            Action::PinProcess(Pid(1), bad_core),
            Action::PinProcess(Pid(99), two_cores),
            Action::PinProcess(Pid(1), two_cores),
        ]);
        let m = sys.run(&tiny_trace(), &mut driver);
        // The job still completes via default placement...
        assert_eq!(m.completed.len(), 1);
        // ...and all three bad actions were counted as rejected.
        assert_eq!(sys.rejected_actions(), 3);
    }

    #[test]
    fn freq_steps_are_refused_outside_userspace_mode() {
        let mut sys = xgene2_system();
        // Under ondemand, a direct step request must be refused — the
        // kernel governor owns the frequency.
        let mut driver = Scripted(vec![Action::SetPmdStep(
            PmdId::new(0),
            avfs_chip::FreqStep::MIN,
        )]);
        let _ = sys.run(&tiny_trace(), &mut driver);
        assert_eq!(sys.rejected_actions(), 1);
    }

    /// A driver that requests one undervolt and retries it a bounded
    /// number of times when told the request failed.
    struct RetryProbe {
        target: avfs_chip::Millivolts,
        attempted: bool,
        faults_seen: u64,
        retries_left: u32,
    }

    impl crate::driver::Driver for RetryProbe {
        fn on_event(
            &mut self,
            _view: &crate::driver::SystemView,
            event: &crate::driver::SysEvent,
        ) -> Vec<Action> {
            match event {
                SysEvent::OperationFault(notice) => {
                    self.faults_seen += 1;
                    if self.retries_left > 0 {
                        self.retries_left -= 1;
                        vec![Action::SetVoltage(notice.requested())]
                    } else {
                        Vec::new()
                    }
                }
                _ if !self.attempted => {
                    self.attempted = true;
                    vec![Action::SetVoltage(self.target)]
                }
                _ => Vec::new(),
            }
        }

        fn name(&self) -> &str {
            "retry-probe"
        }
    }

    #[test]
    fn voltage_faults_feed_back_as_operation_fault_events() {
        use avfs_chip::fault::{FaultPlan, FaultRates};
        let mut sys = xgene2_system();
        sys.chip.set_fault_plan(Some(FaultPlan::new(
            4,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        let mut driver = RetryProbe {
            target: avfs_chip::Millivolts::new(900),
            attempted: false,
            faults_seen: 0,
            retries_left: 3,
        };
        let m = sys.run(&tiny_trace(), &mut driver);
        // The initial attempt and all three retries each produced a
        // fault notice; the run still completed at nominal voltage.
        assert_eq!(driver.faults_seen, 4);
        assert_eq!(m.completed.len(), 1);
        assert_eq!(sys.chip().voltage(), sys.chip().nominal_voltage());
        assert!(sys.chip().fault_stats().mailbox_total() >= 4);
    }

    #[test]
    fn fault_feedback_terminates_against_an_unbounded_retrier() {
        use avfs_chip::fault::{FaultPlan, FaultRates};
        let mut sys = xgene2_system();
        sys.chip.set_fault_plan(Some(FaultPlan::new(
            4,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        let mut driver = RetryProbe {
            target: avfs_chip::Millivolts::new(900),
            attempted: false,
            faults_seen: 0,
            retries_left: u32::MAX,
        };
        let m = sys.run(&tiny_trace(), &mut driver);
        // The per-event round bound cut the infinite retry ladder.
        assert_eq!(m.completed.len(), 1);
        assert!(driver.faults_seen <= FAULT_FEEDBACK_ROUNDS as u64 + 1);
    }

    #[test]
    fn hung_migration_is_cancellable_by_repin() {
        use avfs_chip::fault::{FaultPlan, FaultRates};
        let mut sys = xgene2_system();
        let pid = sys.submit(Benchmark::SpecNamd, 1, 0.5);
        let first: CoreSet = [0u16].iter().map(|&i| CoreId::new(i)).collect();
        let second: CoreSet = [2u16].iter().map(|&i| CoreId::new(i)).collect();
        assert!(sys.pin_process(pid, first));
        sys.chip.set_fault_plan(Some(FaultPlan::new(
            3,
            FaultRates {
                migration: 1.0,
                ..FaultRates::ZERO
            },
        )));
        // The migration hangs: the stall end sits far in the future and
        // the driver view surfaces it.
        assert!(sys.pin_process(pid, second));
        let stall = sys.procs[&pid].stalled_until;
        assert!(stall.saturating_since(sys.now) > SimDuration::from_secs(1_000));
        let view = sys.view();
        assert_eq!(view.process(pid).and_then(|p| p.stalled_until), Some(stall));
        assert_eq!(sys.chip().fault_stats().migration_hangs, 1);
        // Re-pinning the same cores (the watchdog's rescue) restarts the
        // migration with the normal pause.
        assert!(sys.pin_process(pid, second));
        let rescued = sys.procs[&pid].stalled_until;
        assert!(rescued.saturating_since(sys.now) <= sys.config.migration_pause);
    }

    #[test]
    fn initial_placement_never_hangs() {
        use avfs_chip::fault::{FaultPlan, FaultRates};
        let mut sys = xgene2_system();
        sys.chip.set_fault_plan(Some(FaultPlan::new(
            3,
            FaultRates {
                migration: 1.0,
                ..FaultRates::ZERO
            },
        )));
        // Kernel admission pins a waiting process; at 100% migration
        // fault rate the run must still complete (placement is not a
        // migration).
        let m = sys.run(&tiny_trace(), &mut DefaultPolicy::ondemand());
        assert_eq!(m.completed.len(), 1);
        assert_eq!(sys.chip().fault_stats().migration_hangs, 0);
    }

    #[test]
    fn armed_zero_rate_plan_is_bit_identical_to_no_plan() {
        use avfs_chip::fault::FaultPlan;
        let trace = small_trace(11);
        let plain = xgene2_system().run(&trace, &mut DefaultPolicy::ondemand());
        let mut armed_sys = xgene2_system();
        armed_sys
            .chip
            .set_fault_plan(Some(FaultPlan::uniform(99, 0.0)));
        let armed = armed_sys.run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(plain.energy_j.to_bits(), armed.energy_j.to_bits());
        assert_eq!(plain.makespan, armed.makespan);
        assert_eq!(plain.completed.len(), armed.completed.len());
    }

    #[test]
    #[should_panic(expected = "fresh system")]
    fn run_requires_fresh_system() {
        let mut sys = xgene2_system();
        sys.submit(Benchmark::SpecNamd, 1, 0.1);
        let trace = small_trace(1);
        let _ = sys.run(&trace, &mut DefaultPolicy::ondemand());
    }
}
