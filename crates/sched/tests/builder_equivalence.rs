//! The builder is the blessed construction path; these tests pin it to
//! the legacy constructors **bit for bit**: same seed in, identical
//! telemetry journal and [`Report::fingerprint`] out (floats compared
//! via `to_bits`, so even sub-ulp drift fails).

use avfs_chip::presets;
use avfs_sched::driver::DefaultPolicy;
use avfs_sched::system::{System, SystemConfig};
use avfs_sched::{Report, RunMetrics};
use avfs_sim::time::SimDuration;
use avfs_telemetry::Telemetry;
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use avfs_workloads::PerfModel;

fn trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(8, seed);
    cfg.duration = SimDuration::from_secs(180);
    cfg.job_scale = 0.2;
    WorkloadTrace::generate(&cfg)
}

/// Runs one ondemand workload through `system` and exports the journal.
fn drive(mut system: System, telemetry: &Telemetry, seed: u64) -> (String, RunMetrics) {
    let metrics = system.run(&trace(seed), &mut DefaultPolicy::ondemand());
    (telemetry.export_jsonl().expect("hub journal"), metrics)
}

fn built(seed: u64) -> (String, RunMetrics) {
    let telemetry = Telemetry::hub();
    let config = SystemConfig {
        seed,
        ..SystemConfig::default()
    };
    let system = System::builder(presets::xgene2().build(), PerfModel::xgene2())
        .config(config)
        .observer(telemetry.clone())
        .build();
    drive(system, &telemetry, seed)
}

#[allow(deprecated)]
fn legacy(seed: u64) -> (String, RunMetrics) {
    let telemetry = Telemetry::hub();
    let config = SystemConfig {
        seed,
        ..SystemConfig::default()
    };
    let system = System::with_observer(
        presets::xgene2().build(),
        PerfModel::xgene2(),
        config,
        telemetry.clone(),
    );
    drive(system, &telemetry, seed)
}

#[test]
fn builder_matches_legacy_constructor_bit_for_bit() {
    for seed in [7, 42, 99] {
        let (j_new, m_new) = built(seed);
        let (j_old, m_old) = legacy(seed);
        assert!(!j_new.is_empty(), "seed {seed}: empty journal");
        assert_eq!(j_new, j_old, "seed {seed}: journal diverged");
        assert_eq!(
            m_new.fingerprint(),
            m_old.fingerprint(),
            "seed {seed}: metrics diverged"
        );
    }
}

#[test]
fn builder_defaults_match_plain_new() {
    let seed = 11;
    let telemetry_less = System::builder(presets::xgene3().build(), PerfModel::xgene3()).build();
    let mut plain = System::new(
        presets::xgene3().build(),
        PerfModel::xgene3(),
        SystemConfig::default(),
    );
    let mut built = telemetry_less;
    let m_new = built.run(&trace(seed), &mut DefaultPolicy::ondemand());
    let m_old = plain.run(&trace(seed), &mut DefaultPolicy::ondemand());
    assert_eq!(m_new.fingerprint(), m_old.fingerprint());
}
