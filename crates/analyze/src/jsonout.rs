//! Minimal JSON rendering for `--format json`.
//!
//! The analyze crate deliberately has no serde dependency (its reports
//! are flat and hand-renderable), so this module provides the two
//! primitives every renderer needs: string escaping and array joining.
//! Renderers build objects with `format!` and these helpers; all key
//! sets are static, so the output is deterministic by construction.

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a JSON array of pre-rendered values.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Renders a JSON array of strings (each gets quoted and escaped).
pub fn string_array(items: &[String]) -> String {
    let rendered: Vec<String> = items.iter().map(|s| string(s)).collect();
    array(&rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn renders_string_arrays() {
        let items = vec!["plain".to_string(), "with \"quote\"".to_string()];
        assert_eq!(string_array(&items), r#"["plain","with \"quote\""]"#);
        assert_eq!(string_array(&[]), "[]");
    }
}
