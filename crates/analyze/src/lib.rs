//! Static analysis and dynamic invariant exploration for the AVFS
//! workspace.
//!
//! The reproduction's correctness rests on a handful of domain facts the
//! paper takes for granted — safe Vmin is monotone in frequency class,
//! droop class, and utilized-PMD count; the characterized policy table is
//! total and covers the model; every intermediate state of a daemon
//! transition is safe. This crate makes those facts *checkable*:
//!
//! * [`invariant`] — an [`invariant::Invariant`] trait plus a registry of
//!   domain invariants evaluated against a constructed
//!   [`context::AnalysisContext`] (a chip, its raw Vmin tables, and its
//!   characterized policy table). Violations carry a location and an
//!   explanation, so a table hole or inversion is reported as data, not a
//!   panic.
//! * [`lint`] — a source-level lint driver that walks the workspace's
//!   non-test library code and flags banned patterns (`unwrap`/`expect`,
//!   float `==`, `thread::sleep` in sim-clocked paths, truncating `as`
//!   casts near voltage/frequency arithmetic) against a committed
//!   allowlist, so existing debt is frozen and new debt fails the build.
//! * [`race`] — a deterministic interleaving-exploration harness that
//!   replays seeded event schedules through the daemon, applies its
//!   actions one atomic step at a time, and asserts the shared-state
//!   invariants (no torn V/F pair, no mid-migration mask, rail in range)
//!   after every step — the property the fail-safe ordering exists to
//!   maintain.
//! * [`fleet`] — cluster-level checks over `avfs-fleet`: job
//!   conservation through admission/shedding/drain, per-node safety
//!   under cluster-induced load, aggregate consistency, and the
//!   byte-identical-across-worker-counts determinism contract.
//! * [`model`] + [`statespace`] + [`shrink`] — a bounded explicit-state
//!   model checker over the Daemon↔Chip↔Sched shared state: exhaustive
//!   enumeration of every event interleaving up to a depth bound, with
//!   dynamic partial-order reduction (verified-commuting pairs explored
//!   once) and a state-fingerprint cache. Where [`race`] *samples*
//!   schedules, [`model`] *enumerates* them — a clean run at depth `d`
//!   is a proof over every reachable behaviour of length ≤ `d`.
//!   Violating schedules are ddmin-shrunk to a 1-minimal, seedlessly
//!   replayable counterexample.
//! * [`proof`] — exhaustive enumeration of the finite voltage-policy
//!   domain (frequency class × utilized PMDs × threads × intensity ×
//!   droop guard × recovery state) proving the chooser never
//!   undervolts the physical worst case and never costs more power
//!   than nominal, cell by cell — for the model-derived table or any
//!   supplied one ([`proof::prove_preset_with_table`]).
//! * [`margins`] — the measured-table audit: runs an
//!   `avfs-characterize` campaign per preset, replays the compiled
//!   table against the hidden ground truth the campaign never read,
//!   checks monotonicity and byte-identical determinism, and feeds the
//!   measured table through the full policy-domain proof.
//!
//! Run everything from the binary:
//!
//! ```text
//! cargo run -p avfs-analyze -- invariants
//! cargo run -p avfs-analyze -- lint
//! cargo run -p avfs-analyze -- race --schedules 128
//! cargo run -p avfs-analyze -- model --depth 6
//! cargo run -p avfs-analyze -- prove-policy
//! ```
//!
//! Every subcommand accepts `--format json` and exits 0 (clean),
//! 1 (violations), or 2 (usage error).

pub mod context;
pub mod fleet;
pub mod invariant;
pub mod invariants;
pub mod jsonout;
pub mod lint;
pub mod margins;
pub mod model;
pub mod proof;
pub mod race;
pub mod shrink;
pub mod statespace;

pub use context::AnalysisContext;
pub use invariant::{check_all, registry, Invariant, Violation};
