//! Static analysis and dynamic invariant exploration for the AVFS
//! workspace.
//!
//! The reproduction's correctness rests on a handful of domain facts the
//! paper takes for granted — safe Vmin is monotone in frequency class,
//! droop class, and utilized-PMD count; the characterized policy table is
//! total and covers the model; every intermediate state of a daemon
//! transition is safe. This crate makes those facts *checkable*:
//!
//! * [`invariant`] — an [`invariant::Invariant`] trait plus a registry of
//!   domain invariants evaluated against a constructed
//!   [`context::AnalysisContext`] (a chip, its raw Vmin tables, and its
//!   characterized policy table). Violations carry a location and an
//!   explanation, so a table hole or inversion is reported as data, not a
//!   panic.
//! * [`lint`] — a source-level lint driver that walks the workspace's
//!   non-test library code and flags banned patterns (`unwrap`/`expect`,
//!   float `==`, `thread::sleep` in sim-clocked paths, truncating `as`
//!   casts near voltage/frequency arithmetic) against a committed
//!   allowlist, so existing debt is frozen and new debt fails the build.
//! * [`race`] — a deterministic interleaving-exploration harness that
//!   replays seeded event schedules through the daemon, applies its
//!   actions one atomic step at a time, and asserts the shared-state
//!   invariants (no torn V/F pair, no mid-migration mask, rail in range)
//!   after every step — the property the fail-safe ordering exists to
//!   maintain.
//! * [`fleet`] — cluster-level checks over `avfs-fleet`: job
//!   conservation through admission/shedding/drain, per-node safety
//!   under cluster-induced load, aggregate consistency, and the
//!   byte-identical-across-worker-counts determinism contract.
//!
//! Run all three from the binary:
//!
//! ```text
//! cargo run -p avfs-analyze -- invariants
//! cargo run -p avfs-analyze -- lint
//! cargo run -p avfs-analyze -- race --schedules 128
//! ```

pub mod context;
pub mod fleet;
pub mod invariant;
pub mod invariants;
pub mod lint;
pub mod race;

pub use context::AnalysisContext;
pub use invariant::{check_all, registry, Invariant, Violation};
