//! Deterministic interleaving exploration for the daemon.
//!
//! The daemon's fail-safe ordering exists because its outputs are not
//! applied atomically: voltage goes through the SLIMpro mailbox, per-PMD
//! steps through CPPC, and affinity masks through the scheduler — three
//! independent channels a concurrent monitor can observe between any two
//! writes. The property the ordering must maintain (§VI-A) is that *every
//! intermediate state* is safe: the rail always covers the safe Vmin of
//! whatever is currently running at the current frequency program.
//!
//! [`explore`] replays seeded random event schedules (arrivals, finishes,
//! re-classifications, monitor ticks, in permuted orders) through a real
//! [`Daemon`] driving a real [`Chip`], applies each action list **one
//! atomic action at a time**, and evaluates the shared-state invariants
//! at every step boundary — exactly the points a concurrent
//! monitor-sample could land on:
//!
//! * **no torn V/F pair** — `chip.is_voltage_safe_for(busy)` holds
//!   between every pair of actions, not just at the end of a plan;
//! * **no mid-migration mask** — running processes' core masks are
//!   pairwise disjoint and exactly thread-count sized at every step;
//! * **rail in range** — the voltage stays within `[floor, nominal]`
//!   (every `SetVoltage` the daemon emits must be programmable).
//!
//! Schedules are pure functions of their seed (a splitmix64 stream), so
//! any reported violation is replayable by seed.

//! Schedules can also be **fault-bearing**: a per-schedule
//! [`FaultPlan`] makes the SLIMpro mailbox refuse or lose requests, the
//! batch aborts at the failed action (as in the real system), and the
//! daemon's recovery path (retry / safe-mode fallback) runs — with the
//! same invariants still checked at every boundary. Droop excursions are
//! deliberately *not* injected here: the harness does not advance time,
//! and an excursion raises the effective Vmin at the instant it opens —
//! before any controller could react — which would make the torn-state
//! invariant unsatisfiable by construction. Droop response is covered by
//! the full-system resilience runs instead.

use avfs_chip::chip::Chip;
use avfs_chip::error::ChipError;
use avfs_chip::fault::{FaultPlan, FaultRates};
use avfs_chip::freq::FreqStep;
use avfs_chip::presets;
use avfs_chip::topology::CoreSet;
use avfs_core::daemon::Daemon;
use avfs_sched::driver::{Action, Driver, FaultNotice, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sim::time::SimTime;
use avfs_workloads::classify::IntensityClass;
use std::fmt;

/// Bound on synchronous fault→retry rounds per event (mirrors the
/// scheduler's own dispatch bound).
const FAULT_ROUNDS: usize = 8;

/// Outcome of one exploration campaign.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Seeded schedules executed.
    pub schedules: usize,
    /// Events delivered to the daemon across all schedules.
    pub events: u64,
    /// Atomic actions applied.
    pub actions: u64,
    /// Invariant evaluations (one after every atomic action).
    pub checks: u64,
    /// Mailbox faults injected (0 unless exploring with faults).
    pub faults: u64,
    /// Invariant violations, each tagged with its schedule seed.
    pub violations: Vec<String>,
}

impl RaceReport {
    /// True when every schedule ran violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedules, {} events, {} actions, {} interleaved checks, {} injected faults, {} violations",
            self.schedules,
            self.events,
            self.actions,
            self.checks,
            self.faults,
            self.violations.len()
        )
    }
}

/// splitmix64: tiny, deterministic, seed-splittable — all the harness
/// needs to derive permutations and workloads from a schedule id.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One live process in the harness's mirror of the system.
#[derive(Debug, Clone)]
struct Proc {
    pid: Pid,
    threads: usize,
    state: ProcessState,
    assigned: CoreSet,
    class: IntensityClass,
}

impl Proc {
    fn view(&self) -> ProcessView {
        ProcessView {
            pid: self.pid,
            threads: self.threads,
            state: self.state,
            assigned: self.assigned,
            // The kernel sampler reports an L3 rate consistent with the
            // class (the daemon's 3000-accesses threshold sits between).
            l3c_per_mcycle: Some(match self.class {
                IntensityClass::CpuIntensive => 200.0,
                IntensityClass::MemoryIntensive => 15_000.0,
            }),
            class: Some(self.class),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        }
    }
}

/// The mirrored system one schedule runs against.
struct Harness {
    chip: Chip,
    procs: Vec<Proc>,
    governor: GovernorMode,
    seed: u64,
    report: RaceReport,
}

impl Harness {
    fn new(seed: u64, fault_rate: f64) -> Self {
        // Alternate chips so both firmware behaviours are explored.
        let mut chip = if seed.is_multiple_of(2) {
            presets::xgene2().build()
        } else {
            presets::xgene3().build()
        };
        if fault_rate > 0.0 {
            chip.set_fault_plan(Some(FaultPlan::new(
                seed ^ 0xFA17_0000,
                FaultRates {
                    mailbox: fault_rate,
                    ..FaultRates::ZERO
                },
            )));
        }
        Harness {
            chip,
            procs: Vec::new(),
            governor: GovernorMode::Ondemand,
            seed,
            report: RaceReport::default(),
        }
    }

    fn view(&self) -> SystemView {
        let spec = self.chip.spec();
        SystemView {
            now: SimTime::ZERO,
            spec: spec.clone(),
            voltage: self.chip.voltage(),
            pmd_steps: spec
                .all_pmds()
                .map(|p| self.chip.pmd_freq_step(p).unwrap_or(FreqStep::MAX))
                .collect(),
            governor: self.governor,
            droop_alert: self.chip.droop_excursion_active(),
            processes: self.procs.iter().map(Proc::view).collect(),
        }
    }

    fn busy_cores(&self) -> CoreSet {
        self.procs
            .iter()
            .filter(|p| p.state == ProcessState::Running)
            .fold(CoreSet::EMPTY, |acc, p| acc.union(p.assigned))
    }

    fn fail(&mut self, what: &str) {
        self.report
            .violations
            .push(format!("seed {}: {what}", self.seed));
    }

    /// The shared-state invariants, evaluated at an interleaving point.
    fn check_invariants(&mut self, at: &str) {
        self.report.checks += 1;

        // Rail within its regulated window.
        let v = self.chip.voltage();
        let (floor, nominal) = (self.chip.spec().vreg_floor_mv, self.chip.spec().nominal_mv);
        if v.as_mv() < floor || v.as_mv() > nominal {
            let msg = format!("{at}: rail {v} outside [{floor}mV, {nominal}mV]");
            self.fail(&msg);
        }

        // No torn V/F pair: the rail covers the safe Vmin of what is
        // running right now at the frequency program right now.
        let busy = self.busy_cores();
        if !self.chip.is_voltage_safe_for(busy) {
            let msg = format!(
                "{at}: torn V/F state — {v} below safe Vmin {} for busy cores {busy}",
                self.chip.current_safe_vmin(busy)
            );
            self.fail(&msg);
        }

        // No mid-migration mask: running masks are thread-sized and
        // pairwise disjoint.
        let mut seen = CoreSet::EMPTY;
        let mut mask_faults = Vec::new();
        for p in self
            .procs
            .iter()
            .filter(|p| p.state == ProcessState::Running)
        {
            if p.assigned.len() != p.threads {
                mask_faults.push(format!(
                    "{at}: {} holds {} cores for {} threads",
                    p.pid,
                    p.assigned.len(),
                    p.threads
                ));
            }
            if !seen.intersection(p.assigned).is_empty() {
                mask_faults.push(format!(
                    "{at}: {} mask {} overlaps another process",
                    p.pid, p.assigned
                ));
            }
            seen = seen.union(p.assigned);
        }
        for msg in mask_faults {
            self.fail(&msg);
        }
    }

    /// Applies one atomic action — one mailbox/CPPC/affinity write.
    /// An injected mailbox fault is *not* a violation: it is reported
    /// back as the notice the daemon's recovery path consumes.
    fn apply(&mut self, action: Action) -> Option<FaultNotice> {
        self.report.actions += 1;
        match action {
            Action::SetVoltage(mv) => match self.chip.set_voltage(mv) {
                Ok(()) => None,
                Err(ChipError::MailboxRefused { .. }) => {
                    self.report.faults += 1;
                    Some(FaultNotice::VoltageRefused(mv))
                }
                Err(ChipError::MailboxDropped) => {
                    self.report.faults += 1;
                    Some(FaultNotice::VoltageDropped(mv))
                }
                Err(e) => {
                    let msg = format!("daemon requested an unprogrammable voltage: {e}");
                    self.fail(&msg);
                    None
                }
            },
            Action::SetPmdStep(pmd, step) => {
                if self.governor == GovernorMode::Userspace {
                    if let Err(e) = self.chip.set_pmd_freq_step(pmd, step) {
                        let msg = format!("daemon requested an invalid step: {e}");
                        self.fail(&msg);
                    }
                }
                None
            }
            Action::PinProcess(pid, cores) => {
                if let Some(p) = self.procs.iter_mut().find(|p| p.pid == pid) {
                    p.assigned = cores;
                    p.state = ProcessState::Running;
                }
                None
            }
            Action::SetGovernor(mode) => {
                self.governor = mode;
                None
            }
        }
    }

    /// Delivers one event to the daemon and applies its plan one atomic
    /// action at a time, re-checking the invariants at every boundary —
    /// each boundary is a point a concurrent monitor sample can observe.
    /// A faulted action aborts the rest of its batch (exactly as the
    /// scheduler does) and the notice is fed back for a bounded number of
    /// recovery rounds, all under the same interleaved checks.
    fn deliver(&mut self, daemon: &mut Daemon, event: SysEvent) {
        self.report.events += 1;
        let mut event = event;
        for _round in 0..=FAULT_ROUNDS {
            let view = self.view();
            let actions = daemon.on_event(&view, &event);
            self.check_invariants("before plan");
            let mut notice = None;
            for (i, action) in actions.into_iter().enumerate() {
                let outcome = self.apply(action);
                let at = format!("{event:?} action {i}");
                self.check_invariants(&at);
                if outcome.is_some() {
                    notice = outcome;
                    break;
                }
            }
            match notice {
                Some(n) => event = SysEvent::OperationFault(n),
                None => break,
            }
        }
    }
}

/// Runs one seeded schedule; returns its report.
fn run_schedule(seed: u64, events_per_schedule: usize, fault_rate: f64) -> RaceReport {
    let mut rng = Splitmix(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut harness = Harness::new(seed, fault_rate);
    let mut daemon = Daemon::optimal(&harness.chip);
    let mut next_pid = 1u64;

    // Initialization event (governor switch + idle settle).
    harness.deliver(&mut daemon, SysEvent::MonitorTick);

    for _ in 0..events_per_schedule {
        // Build the set of events that could fire now, then let the seed
        // pick which one wins the race to the daemon's queue.
        let live: Vec<(Pid, IntensityClass)> =
            harness.procs.iter().map(|p| (p.pid, p.class)).collect();
        let total_threads: usize = harness.procs.iter().map(|p| p.threads).sum();
        let capacity = harness.chip.spec().cores as usize;

        let mut choices: Vec<u8> = vec![0]; // 0 = monitor tick, always possible
        if total_threads < capacity {
            choices.push(1); // arrival
        }
        if !live.is_empty() {
            choices.push(2); // finish
            choices.push(3); // re-classification
        }
        let choice = choices[rng.below(choices.len() as u64) as usize];
        match choice {
            1 => {
                let threads = 1 + rng.below(4.min((capacity - total_threads) as u64)) as usize;
                let class = if rng.below(2) == 0 {
                    IntensityClass::CpuIntensive
                } else {
                    IntensityClass::MemoryIntensive
                };
                let pid = Pid(next_pid);
                next_pid += 1;
                harness.procs.push(Proc {
                    pid,
                    threads,
                    state: ProcessState::Waiting,
                    assigned: CoreSet::EMPTY,
                    class,
                });
                harness.deliver(&mut daemon, SysEvent::ProcessArrived(pid));
            }
            2 => {
                let (pid, _) = live[rng.below(live.len() as u64) as usize];
                harness.procs.retain(|p| p.pid != pid);
                harness.deliver(&mut daemon, SysEvent::ProcessFinished(pid));
            }
            3 => {
                let (pid, class) = live[rng.below(live.len() as u64) as usize];
                let flipped = match class {
                    IntensityClass::CpuIntensive => IntensityClass::MemoryIntensive,
                    IntensityClass::MemoryIntensive => IntensityClass::CpuIntensive,
                };
                if let Some(p) = harness.procs.iter_mut().find(|p| p.pid == pid) {
                    p.class = flipped;
                }
                harness.deliver(&mut daemon, SysEvent::ClassChanged(pid, flipped));
            }
            _ => harness.deliver(&mut daemon, SysEvent::MonitorTick),
        }
    }
    harness.report
}

/// Explores `schedules` seeded schedules of `events_per_schedule` events
/// each, starting at `base_seed`.
pub fn explore(schedules: usize, events_per_schedule: usize, base_seed: u64) -> RaceReport {
    explore_with_faults(schedules, events_per_schedule, base_seed, 0.0)
}

/// Like [`explore`], but each schedule arms a seeded [`FaultPlan`]
/// injecting mailbox refusals and drops at `fault_rate` per operation,
/// exercising the daemon's retry and safe-mode recovery paths under the
/// same interleaved invariant checks.
pub fn explore_with_faults(
    schedules: usize,
    events_per_schedule: usize,
    base_seed: u64,
    fault_rate: f64,
) -> RaceReport {
    let mut total = RaceReport::default();
    for i in 0..schedules {
        let r = run_schedule(
            base_seed.wrapping_add(i as u64),
            events_per_schedule,
            fault_rate,
        );
        total.schedules += 1;
        total.events += r.events;
        total.actions += r.actions;
        total.checks += r.checks;
        total.faults += r.faults;
        total.violations.extend(r.violations);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_is_deterministic_in_the_seed() {
        let a = explore(4, 12, 7);
        let b = explore(4, 12, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn fail_safe_daemon_survives_many_schedules() {
        let report = explore(16, 20, 1);
        assert!(report.is_clean(), "violations: {:#?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn checks_interleave_every_action() {
        let report = explore(2, 10, 3);
        // One check before each plan plus one per action.
        assert!(report.checks >= report.actions);
    }

    #[test]
    fn zero_fault_rate_matches_plain_exploration() {
        let plain = explore(4, 12, 7);
        let armed = explore_with_faults(4, 12, 7, 0.0);
        assert_eq!(plain.events, armed.events);
        assert_eq!(plain.actions, armed.actions);
        assert_eq!(plain.checks, armed.checks);
        assert_eq!(armed.faults, 0);
        assert_eq!(plain.violations, armed.violations);
    }

    #[test]
    fn recovery_paths_hold_the_invariants_under_faults() {
        let report = explore_with_faults(12, 20, 1, 0.3);
        assert!(report.faults > 0, "a 30% rate must inject faults");
        assert!(report.is_clean(), "violations: {:#?}", report.violations);
        // Recovery rounds add checked actions beyond the original plans.
        assert!(report.checks >= report.actions);
    }

    #[test]
    fn fault_exploration_is_deterministic_in_the_seed() {
        let a = explore_with_faults(6, 16, 9, 0.25);
        let b = explore_with_faults(6, 16, 9, 0.25);
        assert_eq!(a.events, b.events);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.violations, b.violations);
    }
}
