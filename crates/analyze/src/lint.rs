//! Source-level domain lints over the workspace's library code.
//!
//! Four patterns are banned in non-test library code because each has
//! already caused (or nearly caused) real defects in this codebase:
//!
//! * `unwrap()` / `expect(` — panicking accessors in daemon/simulator
//!   paths take the whole evaluation down instead of degrading;
//! * float `==` — voltage/energy comparisons must use ordered integer
//!   millivolts or explicit tolerances;
//! * `thread::sleep` — wall-clock sleeps inside sim-clocked code desync
//!   the simulation clock (channels and OS threads are fine, sleeping is
//!   not);
//! * truncating `as` casts near voltage/frequency identifiers — silently
//!   wrapping a millivolt or MHz value corrupts safety margins;
//! * raw integer unit parameters (`mv: u32`, `mhz: u64`) in function
//!   signatures — the `Millivolts`/`FrequencyMhz` newtypes exist so unit
//!   mix-ups fail to compile instead of corrupting a rail request;
//! * `Instant::now` / `SystemTime::now` — wall-clock reads in
//!   sim-clocked library code make runs irreproducible (the sim clock
//!   and seeded RNG streams are the only time/randomness sources);
//! * `HashMap` / `HashSet` in journal/export/fingerprint paths —
//!   iteration order is randomized per process, so any serialization or
//!   hashing that walks one breaks byte-identical determinism (use the
//!   `BTree` forms);
//! * `#[allow(deprecated)]` — library code must migrate to the builder
//!   construction path, not suppress the deprecation of the legacy
//!   constructors (the equivalence tests that *prove* the builders
//!   match the legacy paths live under `tests/`, which is exempt);
//! * `Vec::new()` / `BinaryHeap::new()` in hot-path modules (the sim
//!   event queue, the sched step loop, the core daemon and monitor) —
//!   the steady-state event loop is allocation-free by contract
//!   (enforced end-to-end by the counting-allocator bench gate), so new
//!   containers in those modules must come from the
//!   `PlanScratch`/`LayoutScratch` recycled-buffer pattern.
//!
//! Existing occurrences are frozen in `crates/analyze/lint-allowlist.txt`
//! (a ratchet: counts may only go down); anything above the allowlisted
//! count fails the run, and an allowlist entry above the current count
//! fails too — the ratchet must be tightened as debt is paid. Test
//! modules (`#[cfg(test)]`), `tests/`, `benches/`, `examples/`, and the
//! offline dependency shims are exempt.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint rule: a name, a per-line matcher, and an optional path
/// scope.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id, used in the allowlist.
    pub name: &'static str,
    /// What the rule guards against.
    pub rationale: &'static str,
    matcher: fn(&str) -> usize,
    /// When set, the rule only applies to paths the filter accepts
    /// (e.g. determinism rules scoped to journal/export/fingerprint
    /// code). `None` applies everywhere.
    path_filter: Option<fn(&str) -> bool>,
}

/// A lint hit in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

/// Result of a lint run compared against the allowlist.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, allowlisted or not.
    pub findings: Vec<Finding>,
    /// (rule, path, found, allowed) tuples exceeding the allowlist.
    pub new_violations: Vec<(String, String, usize, usize)>,
    /// (rule, path, found, allowed) allowlist entries whose debt has
    /// shrunk below the frozen count — the ratchet must be tightened.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Files scanned.
    pub files: usize,
}

impl LintReport {
    /// True when nothing exceeds the allowlist and no allowlist entry
    /// has gone stale.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty() && self.stale.is_empty()
    }
}

fn count_occurrences(line: &str, needle: &str) -> usize {
    line.match_indices(needle).count()
}

fn is_float_token(token: &str) -> bool {
    let t = token.trim_end_matches(&['f', '6', '4', '3', '2', '_'][..]);
    let mut seen_digit = false;
    let mut seen_dot = false;
    for c in t.chars() {
        match c {
            '0'..='9' => seen_digit = true,
            '.' => seen_dot = true,
            '-' | '+' => {}
            _ => return false,
        }
    }
    seen_digit && seen_dot
}

/// Flags `==` / `!=` where either operand is a float literal.
fn float_eq_matcher(line: &str) -> usize {
    let mut hits = 0;
    for op in ["==", "!="] {
        for (idx, _) in line.match_indices(op) {
            // Skip `<=`, `>=`, `!=` prefix overlap for `=`-search: the
            // two-char op itself is exact, but `!==`/`===` don't occur in
            // Rust, so position alone is enough.
            let before = line[..idx].trim_end();
            let after = line[idx + 2..].trim_start();
            let lhs = before
                .rsplit(|c: char| c.is_whitespace() || c == '(')
                .next();
            let rhs = after
                .split(|c: char| c.is_whitespace() || c == ')' || c == ',' || c == ';')
                .next();
            let lhs_float = lhs.is_some_and(is_float_token);
            let rhs_float = rhs.is_some_and(is_float_token);
            if lhs_float || rhs_float {
                hits += 1;
            }
        }
    }
    hits
}

/// Flags lossy `as` narrowing casts on lines handling voltage/frequency
/// quantities, where silent wrapping corrupts safety margins.
fn narrowing_cast_matcher(line: &str) -> usize {
    let lower = line.to_lowercase();
    let domain = ["mv", "mhz", "volt", "freq", "step", "vmin"]
        .iter()
        .any(|kw| lower.contains(kw));
    if !domain {
        return 0;
    }
    [" as u8", " as u16", " as i8", " as i16"]
        .iter()
        .map(|c| count_occurrences(&lower, c))
        .sum()
}

/// Flags function signatures that take voltage/frequency quantities as
/// raw integers instead of the unit newtypes. Only single-line `fn `
/// signatures are examined — a heuristic, but new API surface in this
/// workspace overwhelmingly fits on one line.
fn raw_unit_param_matcher(line: &str) -> usize {
    if !line.contains("fn ") {
        return 0;
    }
    ["mv: u32", "mv: u64", "mhz: u32", "mhz: u64"]
        .iter()
        .map(|p| count_occurrences(line, p))
        .sum()
}

/// Flags wall-clock reads: sim-clocked code must take time from the
/// simulation clock, never the host.
fn wall_clock_matcher(line: &str) -> usize {
    count_occurrences(line, "Instant::now") + count_occurrences(line, "SystemTime::now")
}

/// Flags randomized-iteration-order collections.
fn hash_order_matcher(line: &str) -> usize {
    count_occurrences(line, "HashMap") + count_occurrences(line, "HashSet")
}

/// Paths whose output must be byte-identical across runs: journals,
/// exports, fingerprints/digests, JSON rendering, trace files.
fn is_determinism_sensitive_path(path: &str) -> bool {
    let lower = path.to_lowercase();
    [
        "journal",
        "export",
        "fingerprint",
        "statespace",
        "json",
        "digest",
        "trace",
    ]
    .iter()
    .any(|kw| lower.contains(kw))
}

/// Hot-path modules where steady-state allocation is banned: the sim
/// event queue, the sched step loop, and the core daemon/monitor. The
/// counting-allocator bench gate proves the composed loop allocates
/// nothing; this lint keeps fresh `Vec::new()`/`BinaryHeap::new()`
/// sites from creeping back in between bench runs.
fn is_hot_path(path: &str) -> bool {
    [
        "crates/sim/src/events.rs",
        "crates/sched/src/system.rs",
        "crates/core/src/daemon.rs",
        "crates/core/src/monitor.rs",
    ]
    .iter()
    .any(|p| path.ends_with(p))
}

/// Flags fresh container construction in hot-path modules.
fn hot_path_alloc_matcher(line: &str) -> usize {
    count_occurrences(line, "Vec::new(") + count_occurrences(line, "BinaryHeap::new(")
}

/// The rule set, in report order.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "unwrap",
            rationale: "panicking accessor in library code",
            matcher: |line| count_occurrences(line, ".unwrap()"),
            path_filter: None,
        },
        Rule {
            name: "expect",
            rationale: "panicking accessor in library code",
            matcher: |line| count_occurrences(line, ".expect("),
            path_filter: None,
        },
        Rule {
            name: "float-eq",
            rationale: "exact float comparison against a literal",
            matcher: float_eq_matcher,
            path_filter: None,
        },
        Rule {
            name: "thread-sleep",
            rationale: "wall-clock sleep inside sim-clocked code",
            matcher: |line| count_occurrences(line, "thread::sleep"),
            path_filter: None,
        },
        Rule {
            name: "narrowing-cast",
            rationale: "truncating cast on a voltage/frequency quantity",
            matcher: narrowing_cast_matcher,
            path_filter: None,
        },
        Rule {
            name: "raw-unit-param",
            rationale: "raw integer unit parameter instead of a unit newtype",
            matcher: raw_unit_param_matcher,
            path_filter: None,
        },
        Rule {
            name: "wall-clock",
            rationale: "wall-clock read inside sim-clocked code",
            matcher: wall_clock_matcher,
            path_filter: None,
        },
        Rule {
            name: "hash-order",
            rationale: "randomized iteration order in a determinism-sensitive path",
            matcher: hash_order_matcher,
            path_filter: Some(is_determinism_sensitive_path),
        },
        Rule {
            name: "allow-deprecated",
            rationale: "suppressing a deprecation instead of migrating to the builder",
            matcher: |line| count_occurrences(line, "allow(deprecated"),
            path_filter: None,
        },
        Rule {
            name: "hot-path-alloc",
            rationale: "fresh container construction in an allocation-free hot-path module",
            matcher: hot_path_alloc_matcher,
            path_filter: Some(is_hot_path),
        },
    ]
}

/// Strips `//` comments and the contents of string literals so lints only
/// fire on code. Char literals and raw strings are handled coarsely; the
/// goal is no false positives from prose, not a full lexer.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_string = true;
                out.push('"');
            }
            _ => out.push(c),
        }
    }
    out
}

/// Scans one file's source, skipping `#[cfg(test)]` regions via brace
/// tracking. Rules with a path filter only fire when `rel_path`
/// matches. Public so the matcher tests can drive it on fixture
/// strings.
pub fn scan_source(rules: &[Rule], rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rules: Vec<&Rule> = rules
        .iter()
        .filter(|r| r.path_filter.is_none_or(|f| f(rel_path)))
        .collect();
    // Depth of the brace nesting, and the depth at which a #[cfg(test)]
    // region opened (None when not inside one).
    let mut depth: i64 = 0;
    let mut test_region_depth: Option<i64> = None;
    let mut pending_test_attr = false;

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = strip_comments_and_strings(raw_line);
        let trimmed = line.trim();

        if test_region_depth.is_none() && trimmed.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;

        if pending_test_attr && opens > 0 {
            // The item the attribute annotates just opened its brace.
            test_region_depth = Some(depth);
            pending_test_attr = false;
        }

        let in_test = test_region_depth.is_some();
        depth += opens - closes;

        if let Some(open_depth) = test_region_depth {
            if depth <= open_depth {
                test_region_depth = None;
            }
        }
        if in_test {
            continue;
        }

        for rule in &rules {
            let hits = (rule.matcher)(&line);
            for _ in 0..hits {
                findings.push(Finding {
                    rule: rule.name,
                    path: rel_path.to_string(),
                    line: lineno + 1,
                    text: raw_line.trim().to_string(),
                });
            }
        }
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Parses the allowlist: `rule<TAB>path<TAB>count` lines, `#` comments.
pub fn parse_allowlist(text: &str) -> Vec<(String, String, usize)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split('\t');
            let rule = parts.next()?.to_string();
            let path = parts.next()?.to_string();
            let count = parts.next()?.parse().ok()?;
            Some((rule, path, count))
        })
        .collect()
}

/// Serializes current findings into allowlist format.
pub fn render_allowlist(findings: &[Finding]) -> String {
    let mut counts: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
    for f in findings {
        *counts.entry((f.rule, f.path.as_str())).or_default() += 1;
    }
    let mut out = String::from(
        "# avfs-analyze lint ratchet: rule<TAB>path<TAB>allowed-count.\n\
         # Counts may only decrease; regenerate with `cargo run -p avfs-analyze -- lint --update-allowlist`.\n",
    );
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule}\t{path}\t{count}\n"));
    }
    out
}

/// Lints the workspace's `crates/*/src` trees against `allowlist`.
pub fn run(root: &Path, allowlist: &[(String, String, usize)]) -> LintReport {
    let rules = rules();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return LintReport::default();
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        collect_rs_files(&crate_dir.join("src"), &mut files);
    }

    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        report.findings.extend(scan_source(&rules, &rel, &source));
    }

    // Ratchet comparison: per (rule, path), found must not exceed
    // allowed — and allowed must not exceed found, or the allowlist has
    // gone stale and must be tightened to the new count.
    let mut counts: std::collections::BTreeMap<(String, String), usize> = Default::default();
    for f in &report.findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_default() += 1;
    }
    for ((rule, path), &found) in &counts {
        let allowed = allowlist
            .iter()
            .find(|(r, p, _)| r == rule && p == path)
            .map(|&(_, _, c)| c)
            .unwrap_or(0);
        if found > allowed {
            report
                .new_violations
                .push((rule.clone(), path.clone(), found, allowed));
        }
    }
    for (rule, path, allowed) in allowlist {
        let found = counts
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if found < *allowed {
            report
                .stale
                .push((rule.clone(), path.clone(), found, *allowed));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_and_expect_are_flagged_outside_tests() {
        let src = "fn f() {\n    let x = y.unwrap();\n    let z = w.expect(\"msg\");\n}\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, "unwrap");
        assert_eq!(findings[1].rule, "expect");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\nfn h() { z.unwrap(); }\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_default(); c.unwrap_or_else(|| 1); }\n";
        assert!(scan_source(&rules(), "lib.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_are_ignored() {
        let src = "fn f() {\n    // y.unwrap() in a comment\n    let s = \"x.unwrap()\";\n}\n";
        assert!(scan_source(&rules(), "lib.rs", src).is_empty());
    }

    #[test]
    fn float_literal_comparison_is_flagged() {
        let src = "fn f() { if x == 0.5 { } if 1.0 != y { } if a == b { } }\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "float-eq"));
    }

    #[test]
    fn narrowing_cast_fires_only_near_domain_identifiers() {
        let src = "fn f() {\n    let a = len as u8;\n    let b = vmin_mv as u16;\n}\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "narrowing-cast");
    }

    #[test]
    fn raw_unit_params_fire_on_fn_lines_only() {
        let src = "pub fn set(mv: u32) {}\nstruct S { margin_mv: u32 }\nfn freq(mhz: u64) {}\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "raw-unit-param"));
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn thread_sleep_is_flagged() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        let findings = scan_source(&rules(), "lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "thread-sleep");
    }

    #[test]
    fn allowlist_roundtrip_and_ratchet() {
        let findings = vec![
            Finding {
                rule: "unwrap",
                path: "crates/x/src/lib.rs".into(),
                line: 1,
                text: "x.unwrap()".into(),
            };
            2
        ];
        let rendered = render_allowlist(&findings);
        let parsed = parse_allowlist(&rendered);
        assert_eq!(
            parsed,
            vec![("unwrap".to_string(), "crates/x/src/lib.rs".to_string(), 2)]
        );
    }

    #[test]
    fn wall_clock_reads_are_flagged_everywhere() {
        let src =
            "fn f() {\n    let t = Instant::now();\n    let s = std::time::SystemTime::now();\n}\n";
        let findings = scan_source(&rules(), "crates/sim/src/clock.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "wall-clock"));
    }

    #[test]
    fn hash_collections_are_flagged_only_in_determinism_paths() {
        let src =
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let sensitive = scan_source(&rules(), "crates/telemetry/src/journal.rs", src);
        assert_eq!(sensitive.len(), 3, "{sensitive:?}");
        assert!(sensitive.iter().all(|f| f.rule == "hash-order"));
        // The same source outside a determinism-sensitive path is fine.
        assert!(scan_source(&rules(), "crates/core/src/daemon.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_fires_only_in_hot_path_modules() {
        let src =
            "fn f() {\n    let v: Vec<u32> = Vec::new();\n    let h = BinaryHeap::new();\n}\n";
        for hot in [
            "crates/sim/src/events.rs",
            "crates/sched/src/system.rs",
            "crates/core/src/daemon.rs",
            "crates/core/src/monitor.rs",
        ] {
            let findings = scan_source(&rules(), hot, src);
            assert_eq!(findings.len(), 2, "{hot}: {findings:?}");
            assert!(findings.iter().all(|f| f.rule == "hot-path-alloc"));
        }
        // Cold modules may build fresh containers freely.
        assert!(scan_source(&rules(), "crates/chip/src/power.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_exempts_test_modules_and_with_capacity() {
        let src = "fn f() { let v = Vec::with_capacity(8); }\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { let q: Vec<u8> = Vec::new(); }\n}\n";
        assert!(scan_source(&rules(), "crates/sim/src/events.rs", src).is_empty());
    }

    #[test]
    fn stale_allowlist_entries_fail_the_run() {
        let root = workspace_root();
        // A rule/path pair that certainly has zero current findings.
        let allowlist = vec![(
            "unwrap".to_string(),
            "crates/does-not-exist/src/lib.rs".to_string(),
            3,
        )];
        let report = run(&root, &allowlist);
        assert!(
            report
                .stale
                .iter()
                .any(|(r, p, found, allowed)| r == "unwrap"
                    && p == "crates/does-not-exist/src/lib.rs"
                    && *found == 0
                    && *allowed == 3),
            "{:?}",
            report.stale
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn wildcard_float_tokens_parse() {
        assert!(is_float_token("0.5"));
        assert!(is_float_token("1.0f64"));
        assert!(is_float_token("-2.25"));
        assert!(!is_float_token("x"));
        assert!(!is_float_token("5"));
        assert!(!is_float_token(""));
    }
}
