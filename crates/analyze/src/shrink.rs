//! Delta-debugging counterexample shrinking.
//!
//! A violating schedule from the model checker is as long as the DFS
//! path that found it; most of its events are incidental. [`shrink`]
//! runs classic ddmin over the event list: repeatedly try removing
//! chunks (halving granularity down to single events) and keep any
//! candidate that still reproduces a violation when replayed from a
//! fresh world. Because [`crate::statespace::ModelEvent`] addresses
//! processes by slot and carries no pids or seeds, *any* subsequence of
//! a schedule is itself a well-formed schedule — a candidate that
//! orphans a slot reference simply fails to apply and is rejected as
//! non-reproducing. The result is 1-minimal: removing any single
//! remaining event loses the violation.

use crate::statespace::{ModelEvent, World};

/// Replays `schedule` from a clone of `initial`. Returns the violations
/// of the first failing event, or `None` when the schedule runs clean
/// or contains an inapplicable event.
pub fn replay(initial: &World, schedule: &[ModelEvent]) -> Option<Vec<String>> {
    let mut world = initial.clone();
    for &event in schedule {
        let report = world.apply_event(event)?;
        if !report.violations.is_empty() {
            return Some(report.violations);
        }
    }
    None
}

/// Minimizes `schedule` (which must reproduce a violation from
/// `initial`) to a 1-minimal subsequence, returning it together with
/// the violations its replay produces. A non-reproducing input is
/// returned unchanged with empty violations.
pub fn shrink(initial: &World, schedule: &[ModelEvent]) -> (Vec<ModelEvent>, Vec<String>) {
    let mut current: Vec<ModelEvent> = schedule.to_vec();
    if replay(initial, &current).is_none() {
        return (current, Vec::new());
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Complement: drop current[start..end].
            let candidate: Vec<ModelEvent> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .copied()
                .collect();
            if !candidate.is_empty() && replay(initial, &candidate).is_some() {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                // Single-event removals all failed: 1-minimal.
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    let violations = replay(initial, &current).unwrap_or_default();
    (current, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_core::daemon::Daemon;
    use avfs_workloads::classify::IntensityClass;

    fn broken_world() -> World {
        let chip = avfs_chip::presets::xgene2().build();
        let mut daemon = Daemon::optimal(&chip);
        daemon.set_fail_safe_ordering(false);
        World::new(chip, daemon, 2)
    }

    fn clean_world() -> World {
        let chip = avfs_chip::presets::xgene2().build();
        let daemon = Daemon::optimal(&chip);
        World::new(chip, daemon, 2)
    }

    #[test]
    fn replay_is_clean_on_the_correct_daemon() {
        let w = clean_world();
        let schedule = vec![
            ModelEvent::Tick,
            ModelEvent::Arrive {
                threads: 2,
                class: IntensityClass::MemoryIntensive,
            },
            ModelEvent::Tick,
            ModelEvent::Flip { slot: 0 },
        ];
        assert!(replay(&w, &schedule).is_none());
    }

    #[test]
    fn replay_rejects_inapplicable_subsequences() {
        let w = clean_world();
        // Finish with no live process: inapplicable, not a violation.
        assert!(replay(&w, &[ModelEvent::Finish { slot: 0 }]).is_none());
    }

    #[test]
    fn shrink_returns_nonreproducing_input_unchanged() {
        let w = clean_world();
        let schedule = vec![ModelEvent::Tick, ModelEvent::Tick];
        let (kept, violations) = shrink(&w, &schedule);
        assert_eq!(kept, schedule);
        assert!(violations.is_empty());
    }

    #[test]
    fn shrunken_schedule_is_one_minimal_and_reproduces() {
        let w = broken_world();
        // A deliberately padded schedule around the known hazard: settle
        // low on a memory-intensive process, then flip it to
        // cpu-intensive (steps raise before the lazy voltage catches up).
        let padded = vec![
            ModelEvent::Tick,
            ModelEvent::Arrive {
                threads: 1,
                class: IntensityClass::CpuIntensive,
            },
            ModelEvent::Finish { slot: 0 },
            ModelEvent::Arrive {
                threads: 2,
                class: IntensityClass::MemoryIntensive,
            },
            ModelEvent::Tick,
            ModelEvent::Tick,
            ModelEvent::Flip { slot: 0 },
        ];
        assert!(
            replay(&w, &padded).is_some(),
            "padded schedule must reproduce for this test to be meaningful"
        );
        let (shrunk, violations) = shrink(&w, &padded);
        assert!(!violations.is_empty());
        assert!(shrunk.len() < padded.len(), "{shrunk:?}");
        // 1-minimality: dropping any single event loses the violation.
        for skip in 0..shrunk.len() {
            let candidate: Vec<ModelEvent> = shrunk
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &e)| e)
                .collect();
            assert!(
                replay(&w, &candidate).is_none(),
                "dropping event {skip} still reproduces: {candidate:?}"
            );
        }
    }
}
