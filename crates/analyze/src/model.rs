//! Bounded explicit-state model checking of the Daemon↔Chip↔Sched loop.
//!
//! [`check`] enumerates *every* interleaving of the symbolic event
//! alphabet ([`crate::statespace::ModelEvent`]) up to a configurable
//! depth, on both chip presets, evaluating the three torn-state
//! properties at every atomic-action boundary (and the full static
//! invariant registry once per preset — those invariants are functions
//! of construction-time tables only, so one evaluation covers every
//! explored state). Where the race explorer samples 160 seeded
//! schedules, this is exhaustive within the bound: zero violations here
//! means *no* reachable torn state exists in ≤ depth events, period.
//!
//! Two reductions keep the frontier tractable without giving up
//! exhaustiveness:
//!
//! * **State-hash cache.** States are fingerprinted (rail mV, frequency
//!   program, masks, recovery state — [`crate::statespace::World::fingerprint`])
//!   and a revisited state's subtree is pruned: every continuation from
//!   an equal state is already covered.
//! * **Dynamic partial-order reduction (sleep sets).** After exploring
//!   sibling `e_i`, a later sibling `e_j`'s child carries `e_i` in its
//!   sleep set when the two *verifiably commute* at this state: their
//!   write footprints are disjoint (no global rail/governor write,
//!   disjoint PMD-step and core-mask sets, disjoint pids — e.g. per-PMD
//!   frequency steps on different PMDs, pins of disjoint core sets) AND
//!   executing both orders reaches the same fingerprint with no
//!   violation. The verification itself applies the commuted pair under
//!   full interleaved checks, so the skipped execution's intermediate
//!   states were checked before being skipped — the reduction is sound
//!   for the interleaved properties, not just for end states.
//!
//! On a violation the exploration stops and the offending schedule is
//! handed to the delta-debugging shrinker ([`crate::shrink`]), which
//! minimizes it to a 1-minimal, seedlessly replayable repro.

use crate::shrink;
use crate::statespace::{ModelEvent, StepReport, World};
use avfs_chip::presets;
use avfs_core::daemon::Daemon;
use std::collections::BTreeSet;
use std::fmt;

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Event-depth bound: every interleaving of at most this many events
    /// is covered.
    pub depth: usize,
    /// Maximum concurrently live processes (branching bound).
    pub max_procs: usize,
    /// Enable sleep-set DPOR (disable to cross-check that the reduction
    /// drops no states).
    pub dpor: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            depth: 6,
            max_procs: 2,
            dpor: true,
        }
    }
}

/// A violating schedule, minimized.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunken schedule (replay from a fresh world reproduces).
    pub schedule: Vec<ModelEvent>,
    /// Length of the schedule as first discovered, before shrinking.
    pub original_len: usize,
    /// Violations the shrunken schedule reproduces.
    pub violations: Vec<String>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample (shrunk {} -> {} events; replay from a fresh system):",
            self.original_len,
            self.schedule.len()
        )?;
        for (i, ev) in self.schedule.iter().enumerate() {
            writeln!(f, "  {}. {ev}", i + 1)?;
        }
        for v in &self.violations {
            writeln!(f, "  violated: {v}")?;
        }
        Ok(())
    }
}

/// Exploration outcome for one preset.
#[derive(Debug, Clone, Default)]
pub struct PresetModelReport {
    /// Preset name.
    pub name: String,
    /// Distinct states visited.
    pub states: u64,
    /// Event applications executed during exploration.
    pub transitions: u64,
    /// Transitions whose target state was already cached (subtree
    /// pruned).
    pub cache_hits: u64,
    /// Sibling executions suppressed by sleep sets.
    pub dpor_skips: u64,
    /// Commuting pairs verified (both orders executed and compared).
    pub dpor_pairs: u64,
    /// Paths cut by the depth bound.
    pub bound_hits: u64,
    /// Interleaved invariant evaluations.
    pub checks: u64,
    /// Static registry violations (evaluated once; see module docs).
    pub registry_violations: Vec<String>,
    /// First violating schedule found, shrunk — `None` when clean.
    pub counterexample: Option<Counterexample>,
}

impl PresetModelReport {
    /// True when neither the exploration nor the static registry found
    /// anything.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none() && self.registry_violations.is_empty()
    }

    /// Executed-plus-skipped over executed: how much sibling work the
    /// sleep sets removed (1.0 = none).
    pub fn reduction_factor(&self) -> f64 {
        if self.transitions == 0 {
            return 1.0;
        }
        (self.transitions + self.dpor_skips) as f64 / self.transitions as f64
    }
}

impl fmt::Display for PresetModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} states, {} transitions, {} cache-pruned, {} DPOR-skipped \
             ({} commuting pairs, reduction {:.2}x), {} bound cutoffs, {} checks, {}",
            self.name,
            self.states,
            self.transitions,
            self.cache_hits,
            self.dpor_skips,
            self.dpor_pairs,
            self.reduction_factor(),
            self.bound_hits,
            self.checks,
            if self.is_clean() {
                "no violations".to_string()
            } else {
                format!(
                    "{} violation(s)",
                    self.registry_violations.len() + usize::from(self.counterexample.is_some())
                )
            }
        )
    }
}

/// Outcome of a full `model` run.
#[derive(Debug, Clone, Default)]
pub struct ModelReport {
    /// The depth bound explored.
    pub depth: usize,
    /// Per-preset results.
    pub presets: Vec<PresetModelReport>,
}

impl ModelReport {
    /// True when every preset explored clean.
    pub fn is_clean(&self) -> bool {
        self.presets.iter().all(PresetModelReport::is_clean)
    }
}

struct Explorer {
    opts: ModelOptions,
    visited: BTreeSet<u64>,
    report: PresetModelReport,
    counterexample_path: Option<Vec<ModelEvent>>,
}

/// One executed sibling, kept for DPOR pair verification.
struct Sibling {
    event: ModelEvent,
    world: World,
    step: StepReport,
}

impl Explorer {
    fn new(name: &str, opts: ModelOptions) -> Self {
        Explorer {
            opts,
            visited: BTreeSet::new(),
            report: PresetModelReport {
                name: name.to_string(),
                ..PresetModelReport::default()
            },
            counterexample_path: None,
        }
    }

    fn explore(&mut self, root: &World) {
        self.visited.insert(root.fingerprint());
        self.report.states += 1;
        let mut path = Vec::new();
        self.dfs(root, 0, &[], &mut path);
    }

    fn account(&mut self, step: &StepReport) {
        self.report.transitions += 1;
        self.report.checks += step.checks;
    }

    /// Verified commutation at `base`: disjoint footprints (fast filter)
    /// and both orders reach the same fingerprint, with the cross
    /// applications themselves violation-free under full interleaved
    /// checks. Returns false — dependent — on any doubt, which only
    /// costs exploration work, never soundness.
    fn independent(
        &mut self,
        a: &Sibling,
        b_event: ModelEvent,
        b_world: &World,
        b_step: &StepReport,
    ) -> bool {
        if !a.step.footprint_disjoint(b_step) {
            return false;
        }
        // a then b.
        let mut ab = a.world.clone();
        let Some(rab) = ab.apply_event(b_event) else {
            return false;
        };
        self.report.checks += rab.checks;
        if !rab.violations.is_empty() {
            return false;
        }
        // b then a.
        let mut ba = b_world.clone();
        let Some(rba) = ba.apply_event(a.event) else {
            return false;
        };
        self.report.checks += rba.checks;
        if !rba.violations.is_empty() {
            return false;
        }
        self.report.dpor_pairs += 1;
        ab.fingerprint() == ba.fingerprint()
    }

    fn dfs(
        &mut self,
        world: &World,
        depth: usize,
        sleep: &[ModelEvent],
        path: &mut Vec<ModelEvent>,
    ) {
        if self.counterexample_path.is_some() {
            return;
        }
        if depth == self.opts.depth {
            self.report.bound_hits += 1;
            return;
        }
        let mut explored: Vec<Sibling> = Vec::new();
        for event in world.enabled_events() {
            if self.counterexample_path.is_some() {
                return;
            }
            if sleep.contains(&event) {
                self.report.dpor_skips += 1;
                continue;
            }
            let mut child = world.clone();
            let Some(step) = child.apply_event(event) else {
                continue;
            };
            self.account(&step);
            if !step.violations.is_empty() {
                let mut cx = path.clone();
                cx.push(event);
                self.counterexample_path = Some(cx);
                return;
            }
            let fingerprint = child.fingerprint();
            if self.visited.contains(&fingerprint) {
                self.report.cache_hits += 1;
            } else {
                self.visited.insert(fingerprint);
                self.report.states += 1;
                let mut child_sleep: Vec<ModelEvent> = Vec::new();
                if self.opts.dpor {
                    for sibling in &explored {
                        if self.independent(sibling, event, &child, &step) {
                            child_sleep.push(sibling.event);
                        }
                    }
                }
                path.push(event);
                self.dfs(&child, depth + 1, &child_sleep, path);
                path.pop();
                if self.counterexample_path.is_some() {
                    return;
                }
            }
            explored.push(Sibling {
                event,
                world: child,
                step,
            });
        }
    }
}

/// Explores one world exhaustively up to the bound; on a violation the
/// schedule is shrunk before being reported.
pub fn check_world(name: &str, root: &World, opts: &ModelOptions) -> PresetModelReport {
    let mut explorer = Explorer::new(name, opts.clone());
    explorer.explore(root);
    let mut report = explorer.report;
    if let Some(found) = explorer.counterexample_path {
        let original_len = found.len();
        let (schedule, violations) = shrink::shrink(root, &found);
        report.counterexample = Some(Counterexample {
            schedule,
            original_len,
            violations,
        });
    }
    report
}

/// Runs the bounded checker on both chip presets with the paper's
/// Optimal daemon, folding in the static invariant registry (evaluated
/// once per preset — its inputs are construction-time constants).
pub fn check(opts: &ModelOptions) -> ModelReport {
    let mut report = ModelReport {
        depth: opts.depth,
        presets: Vec::new(),
    };
    for (name, builder) in [
        ("X-Gene 2", presets::xgene2()),
        ("X-Gene 3", presets::xgene3()),
    ] {
        let chip = builder.build();
        let daemon = Daemon::optimal(&chip);
        let root = World::new(chip, daemon, opts.max_procs);
        let mut preset = check_world(name, &root, opts);
        let cx = crate::context::AnalysisContext::from_builder(name, &builder);
        preset.registry_violations = crate::invariant::check_all(&cx)
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        report.presets.push(preset);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(depth: usize) -> ModelOptions {
        ModelOptions {
            depth,
            ..ModelOptions::default()
        }
    }

    #[test]
    fn shallow_exhaustive_exploration_is_clean_on_both_presets() {
        let report = check(&opts(3));
        assert!(
            report.is_clean(),
            "{:#?}",
            report
                .presets
                .iter()
                .map(|p| (&p.name, &p.counterexample, &p.registry_violations))
                .collect::<Vec<_>>()
        );
        for p in &report.presets {
            assert!(p.states > 1, "{p}");
            assert!(p.checks > 0, "{p}");
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = check(&opts(3));
        let b = check(&opts(3));
        for (pa, pb) in a.presets.iter().zip(&b.presets) {
            assert_eq!(pa.states, pb.states);
            assert_eq!(pa.transitions, pb.transitions);
            assert_eq!(pa.cache_hits, pb.cache_hits);
            assert_eq!(pa.dpor_skips, pb.dpor_skips);
        }
    }

    #[test]
    fn dpor_drops_work_but_never_states() {
        // Depth 5: deep enough that commuting pairs exist *below* the
        // bound edge on both presets, so their sleep entries get a
        // chance to suppress work.
        let with = check(&opts(5));
        let without = check(&ModelOptions {
            depth: 5,
            dpor: false,
            ..ModelOptions::default()
        });
        for (a, b) in with.presets.iter().zip(&without.presets) {
            // Sleep-set skips only suppress transitions into states that
            // the commuted order already covered: the distinct-state set
            // must be identical.
            assert_eq!(a.states, b.states, "{} vs {}", a, b);
            assert!(a.dpor_skips > 0, "DPOR found no commuting pairs: {a}");
            assert_eq!(b.dpor_skips, 0);
            assert!(a.reduction_factor() > 1.0);
        }
    }
}
