//! The invariant trait, violation type, and registry.

use crate::context::AnalysisContext;
use crate::invariants;
use std::fmt;

/// A broken invariant, reported as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that failed (matches [`Invariant::name`]).
    pub invariant: &'static str,
    /// Where in the artifact the violation sits, e.g.
    /// `base_mv[Max][D45]` or `policy[Reduced][D35][bucket 2]`.
    pub location: String,
    /// What is wrong and why it matters.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}: {}",
            self.invariant, self.location, self.message
        )
    }
}

/// One checkable domain fact.
///
/// Implementations must never panic on broken artifacts — a violated
/// invariant is a *result*, not a crash — which is why table- and
/// policy-level checks read raw tables instead of constructing the
/// (asserting) model types.
pub trait Invariant {
    /// Stable identifier, used in reports and violation records.
    fn name(&self) -> &'static str;
    /// One-line statement of the fact being checked.
    fn description(&self) -> &'static str;
    /// Checks the fact against a context; empty means it holds.
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation>;
}

/// All registered invariants, in report order.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    invariants::all()
}

/// Runs the full registry against a context.
pub fn check_all(cx: &AnalysisContext) -> Vec<Violation> {
    registry().iter().flat_map(|inv| inv.check(cx)).collect()
}
