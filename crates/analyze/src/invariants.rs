//! The registered domain invariants.
//!
//! Grouped by the artifact they inspect:
//!
//! * **Tables** — the raw [`avfs_chip::vmin::VminTables`], checked without
//!   constructing a `VminModel` (whose constructor panics on bad tables,
//!   which would turn a finding into a crash).
//! * **Model** — queries against the built chip's validated model.
//! * **Topology** — structural well-formedness of the [`ChipSpec`].
//! * **Policy** — the characterized [`PolicyTable`]: totality over every
//!   `FreqVminClass × DroopClass × thread-bucket` cell, monotonicity, and
//!   coverage of the underlying model.
//! * **Power/EDP** — non-negativity and voltage monotonicity of the power
//!   model, and sanity of the ED²P scaling estimates.

use crate::context::AnalysisContext;
use crate::invariant::{Invariant, Violation};
use avfs_chip::freq::{FreqStep, FreqVminClass};
use avfs_chip::power::{PmdLoad, PowerInputs};
use avfs_chip::topology::PmdId;
use avfs_chip::vmin::{DroopClass, VminQuery};
use avfs_chip::voltage::Millivolts;
use avfs_core::edp::scaling_estimate;
use avfs_core::policy::PolicyTable;

/// Frequency classes in ascending voltage-demand order, with the
/// matching row index of `VminTables::base_mv`.
const FREQ_CLASSES: [(FreqVminClass, usize, &str); 3] = [
    (FreqVminClass::Divided, 0, "Divided"),
    (FreqVminClass::Reduced, 1, "Reduced"),
    (FreqVminClass::Max, 2, "Max"),
];

const DROOP_NAMES: [&str; 4] = ["D25", "D35", "D45", "D55"];

fn violation(invariant: &'static str, location: String, message: String) -> Violation {
    Violation {
        invariant,
        location,
        message,
    }
}

/// Every registered invariant, in report order.
pub fn all() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(VminDroopMonotone),
        Box::new(VminFreqMonotone),
        Box::new(VminWithinRail),
        Box::new(VminPmdOffsets),
        Box::new(GuardbandPositive),
        Box::new(CrashPointBelowSafe),
        Box::new(VminPmdCountMonotone),
        Box::new(WorkloadDecayBounded),
        Box::new(TopologyWellFormed),
        Box::new(FreqClassTotalMonotone),
        Box::new(DroopClassTotalMonotone),
        Box::new(PolicyTotality),
        Box::new(PolicyWithinRail),
        Box::new(PolicyMonotone),
        Box::new(PolicyCoversModel),
        Box::new(PowerNonNegative),
        Box::new(PowerMonotoneInVoltage),
        Box::new(EdpEstimatesSane),
    ]
}

// ---------------------------------------------------------------------
// Table-level invariants (raw VminTables).
// ---------------------------------------------------------------------

/// Safe Vmin must not decrease as the droop class rises (Table II reads
/// left to right: more utilized PMDs → larger droops → more voltage).
pub struct VminDroopMonotone;

impl Invariant for VminDroopMonotone {
    fn name(&self) -> &'static str {
        "vmin-droop-monotone"
    }
    fn description(&self) -> &'static str {
        "base Vmin is non-decreasing in droop class within each frequency class"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        for (_, row, fc_name) in FREQ_CLASSES {
            let cells = &cx.tables.base_mv[row];
            for col in 1..cells.len() {
                if cells[col] < cells[col - 1] {
                    out.push(violation(
                        self.name(),
                        format!("base_mv[{fc_name}][{}]", DROOP_NAMES[col]),
                        format!(
                            "{}mV drops below the {} entry {}mV: a wider allocation \
                             would be driven at a lower voltage than a narrower one",
                            cells[col],
                            DROOP_NAMES[col - 1],
                            cells[col - 1]
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Safe Vmin must not decrease as the frequency class rises
/// (Divided ≤ Reduced ≤ Max — the §II-B ordering).
pub struct VminFreqMonotone;

impl Invariant for VminFreqMonotone {
    fn name(&self) -> &'static str {
        "vmin-freq-monotone"
    }
    fn description(&self) -> &'static str {
        "base Vmin is non-decreasing in frequency class within each droop class"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        for (col, droop_name) in DROOP_NAMES.iter().enumerate() {
            for w in FREQ_CLASSES.windows(2) {
                let (lo, hi) = (&w[0], &w[1]);
                let (v_lo, v_hi) = (cx.tables.base_mv[lo.1][col], cx.tables.base_mv[hi.1][col]);
                if v_hi < v_lo {
                    out.push(violation(
                        self.name(),
                        format!("base_mv[{}][{droop_name}]", hi.2),
                        format!(
                            "{v_hi}mV is below the {} entry {v_lo}mV: a faster clock \
                             would be certified at a lower voltage than a slower one",
                            lo.2
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Every certifiable voltage — base cell plus the worst workload and
/// static-variation corrections — must fit inside the regulated rail.
pub struct VminWithinRail;

impl Invariant for VminWithinRail {
    fn name(&self) -> &'static str {
        "vmin-within-rail"
    }
    fn description(&self) -> &'static str {
        "base Vmin plus worst-case margins stays within [vreg floor, nominal]"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let floor = cx.spec.vreg_floor_mv;
        let nominal = cx.spec.nominal_mv;
        let worst_offset = cx.tables.pmd_offset_mv.iter().copied().max().unwrap_or(0);
        let headroom = cx.tables.workload_span_mv.div_ceil(2) + worst_offset.max(0) as u32;
        for (_, row, fc_name) in FREQ_CLASSES {
            for (col, &mv) in cx.tables.base_mv[row].iter().enumerate() {
                let loc = format!("base_mv[{fc_name}][{}]", DROOP_NAMES[col]);
                if mv < floor {
                    out.push(violation(
                        self.name(),
                        loc,
                        format!("{mv}mV is below the regulator floor {floor}mV"),
                    ));
                } else if mv + headroom > nominal {
                    out.push(violation(
                        self.name(),
                        loc,
                        format!(
                            "{mv}mV + {headroom}mV worst-case margin exceeds the \
                             nominal {nominal}mV the rail can deliver"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Per-PMD static-variation offsets must exist, tile the chip evenly, and
/// never push a safe Vmin below the regulator floor.
pub struct VminPmdOffsets;

impl Invariant for VminPmdOffsets {
    fn name(&self) -> &'static str {
        "vmin-pmd-offsets"
    }
    fn description(&self) -> &'static str {
        "static-variation offsets cover the chip's PMDs and keep Vmin above the floor"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let offsets = &cx.tables.pmd_offset_mv;
        if offsets.is_empty() {
            return vec![violation(
                self.name(),
                "pmd_offset_mv".to_string(),
                "no static-variation offsets: the model cannot describe any PMD".to_string(),
            )];
        }
        let pmds = cx.spec.pmds() as usize;
        if !pmds.is_multiple_of(offsets.len()) {
            out.push(violation(
                self.name(),
                "pmd_offset_mv".to_string(),
                format!(
                    "{} offsets do not tile {pmds} PMDs evenly; the repeat \
                     pattern would assign some PMDs inconsistent offsets",
                    offsets.len()
                ),
            ));
        }
        let min_base = cx
            .tables
            .base_mv
            .iter()
            .flatten()
            .copied()
            .min()
            .unwrap_or(0);
        for (i, &off) in offsets.iter().enumerate() {
            let adjusted = (min_base as i64) + off as i64;
            if adjusted < cx.spec.vreg_floor_mv as i64 {
                out.push(violation(
                    self.name(),
                    format!("pmd_offset_mv[{i}]"),
                    format!(
                        "offset {off}mV drags the lowest base Vmin {min_base}mV \
                         below the regulator floor {}mV",
                        cx.spec.vreg_floor_mv
                    ),
                ));
            }
        }
        out
    }
}

/// The unsafe region must have positive width, and subtracting it from
/// any safe Vmin must not saturate: `safe_vmin >= crash_point + span`
/// with the crash point still a real (nonzero) voltage.
pub struct GuardbandPositive;

impl Invariant for GuardbandPositive {
    fn name(&self) -> &'static str {
        "guardband-positive"
    }
    fn description(&self) -> &'static str {
        "the unsafe-region span is positive and crash points never saturate to 0mV"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let span = cx.tables.unsafe_span_mv;
        if span == 0 {
            out.push(violation(
                self.name(),
                "unsafe_span_mv".to_string(),
                "zero-width unsafe region: the crash point coincides with the safe \
                 Vmin, so any undervolt below 'safe' fails instantly and pfail \
                 curves degenerate"
                    .to_string(),
            ));
        }
        for (_, row, fc_name) in FREQ_CLASSES {
            for (col, &mv) in cx.tables.base_mv[row].iter().enumerate() {
                if mv <= span {
                    out.push(violation(
                        self.name(),
                        format!("base_mv[{fc_name}][{}]", DROOP_NAMES[col]),
                        format!(
                            "unsafe span {span}mV swallows the whole {mv}mV safe \
                             Vmin; the crash point would saturate at 0mV"
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Model-level invariants (the built chip's validated model).
// ---------------------------------------------------------------------

/// `crash_point(safe) < safe` for every operating point the daemon can
/// reach — the failure model needs a strictly ordered pair.
pub struct CrashPointBelowSafe;

impl Invariant for CrashPointBelowSafe {
    fn name(&self) -> &'static str {
        "crash-below-safe"
    }
    fn description(&self) -> &'static str {
        "the crash point sits strictly below the safe Vmin everywhere"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let model = cx.chip.vmin_model();
        let pmds = cx.spec.pmds() as usize;
        for (fc, _, fc_name) in FREQ_CLASSES {
            for utilized in 1..=pmds {
                let q = VminQuery {
                    freq_class: fc,
                    utilized_pmds: utilized,
                    active_threads: utilized * cx.spec.cores_per_pmd as usize,
                    workload_sensitivity: 0.0,
                };
                let safe = model.safe_vmin(&q);
                let crash = model.crash_point(safe);
                if crash >= safe {
                    out.push(violation(
                        self.name(),
                        format!("safe_vmin[{fc_name}][{utilized} PMDs]"),
                        format!("crash point {crash} is not below safe Vmin {safe}"),
                    ));
                }
            }
        }
        out
    }
}

/// Utilizing more PMDs must never lower the safe Vmin (droops only grow
/// with utilized PMDs — the monotonicity Table II encodes).
pub struct VminPmdCountMonotone;

impl Invariant for VminPmdCountMonotone {
    fn name(&self) -> &'static str {
        "vmin-pmd-count-monotone"
    }
    fn description(&self) -> &'static str {
        "model safe Vmin is non-decreasing in the utilized-PMD count"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let model = cx.chip.vmin_model();
        let pmds = cx.spec.pmds() as usize;
        let threads = cx.spec.cores as usize; // fixed: isolates the droop term
        for (fc, _, fc_name) in FREQ_CLASSES {
            let mut prev = Millivolts::new(0);
            for utilized in 1..=pmds {
                let q = VminQuery {
                    freq_class: fc,
                    utilized_pmds: utilized,
                    active_threads: threads,
                    workload_sensitivity: 0.0,
                };
                let v = model.safe_vmin(&q);
                if v < prev {
                    out.push(violation(
                        self.name(),
                        format!("safe_vmin[{fc_name}][{utilized} PMDs]"),
                        format!("{v} is below the {}-PMD value {prev}", utilized - 1),
                    ));
                }
                prev = v;
            }
        }
        out
    }
}

/// The workload-delta decay is a fraction in `(0, 1]` and never grows
/// with thread count (Figure 3 vs Figure 4).
pub struct WorkloadDecayBounded;

impl Invariant for WorkloadDecayBounded {
    fn name(&self) -> &'static str {
        "workload-decay-bounded"
    }
    fn description(&self) -> &'static str {
        "workload decay stays in (0, 1] and is non-increasing in threads"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let model = cx.chip.vmin_model();
        let mut prev = f64::INFINITY;
        for threads in 0..=(cx.spec.cores as usize) {
            let d = model.workload_decay(threads);
            let loc = format!("workload_decay({threads})");
            if !(d > 0.0 && d <= 1.0) {
                out.push(violation(
                    self.name(),
                    loc.clone(),
                    format!("decay {d} leaves (0, 1]"),
                ));
            }
            if d > prev {
                out.push(violation(
                    self.name(),
                    loc,
                    format!("decay {d} exceeds the {}-thread value {prev}", threads - 1),
                ));
            }
            prev = d;
        }
        out
    }
}

// ---------------------------------------------------------------------
// Topology.
// ---------------------------------------------------------------------

/// The chip spec must describe a realizable machine: cores divide evenly
/// into PMDs, fit the 64-bit core mask, and the core↔PMD maps agree.
pub struct TopologyWellFormed;

impl Invariant for TopologyWellFormed {
    fn name(&self) -> &'static str {
        "topology-well-formed"
    }
    fn description(&self) -> &'static str {
        "the chip spec is structurally consistent (cores, PMDs, rail, clocks)"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let spec = &cx.spec;
        let mut structural = |cond: bool, loc: &str, msg: String| {
            if !cond {
                out.push(violation(self.name(), loc.to_string(), msg));
            }
        };
        structural(spec.cores > 0, "spec.cores", "chip has no cores".into());
        structural(
            spec.cores_per_pmd > 0,
            "spec.cores_per_pmd",
            "PMDs are empty".into(),
        );
        structural(
            spec.cores <= 64,
            "spec.cores",
            format!("{} cores exceed the 64-core CoreSet mask", spec.cores),
        );
        structural(
            spec.fmax_mhz > 0,
            "spec.fmax_mhz",
            "zero maximum frequency".into(),
        );
        structural(
            spec.vreg_floor_mv <= spec.nominal_mv,
            "spec.vreg_floor_mv",
            format!(
                "regulator floor {}mV above nominal {}mV",
                spec.vreg_floor_mv, spec.nominal_mv
            ),
        );
        if spec.cores_per_pmd > 0 && !spec.cores.is_multiple_of(spec.cores_per_pmd) {
            out.push(violation(
                self.name(),
                "spec.cores".to_string(),
                format!(
                    "{} cores do not divide into {}-core PMDs",
                    spec.cores, spec.cores_per_pmd
                ),
            ));
            return out; // pmd_of/cores_of would panic below
        }
        if spec.cores == 0 || spec.cores > 64 {
            return out;
        }
        for core in spec.all_cores() {
            let pmd = spec.pmd_of(core);
            if !spec.contains_pmd(pmd) || !spec.cores_of(pmd).contains(&core) {
                out.push(violation(
                    self.name(),
                    format!("pmd_of({core})"),
                    format!("{core} maps to {pmd}, which does not map back"),
                ));
            }
        }
        for pmd in spec.all_pmds() {
            let n = spec.cores_of(pmd).len();
            if n != spec.cores_per_pmd as usize {
                out.push(violation(
                    self.name(),
                    format!("cores_of({pmd})"),
                    format!("{n} cores instead of {}", spec.cores_per_pmd),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Classification maps.
// ---------------------------------------------------------------------

/// The firmware step→class map is total over all 8 steps and
/// non-decreasing in the step numerator, with the anchors the paper
/// measured (full speed → Max, half speed → Reduced).
pub struct FreqClassTotalMonotone;

impl Invariant for FreqClassTotalMonotone {
    fn name(&self) -> &'static str {
        "freq-class-total-monotone"
    }
    fn description(&self) -> &'static str {
        "the CPPC step→Vmin-class map is monotone with the measured anchors"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut prev = FreqVminClass::Divided;
        for step in FreqStep::all() {
            let class = cx.behavior.vmin_class(step);
            if class < prev {
                out.push(violation(
                    self.name(),
                    format!("vmin_class({step})"),
                    format!("{class} is below the previous step's class {prev}"),
                ));
            }
            prev = class;
        }
        if cx.behavior.vmin_class(FreqStep::MAX) != FreqVminClass::Max {
            out.push(violation(
                self.name(),
                "vmin_class(8/8)".to_string(),
                "full speed must be in the Max class".to_string(),
            ));
        }
        if cx.behavior.vmin_class(FreqStep::HALF) != FreqVminClass::Reduced {
            out.push(violation(
                self.name(),
                "vmin_class(4/8)".to_string(),
                "half speed must earn the Reduced (clock-skipping) class".to_string(),
            ));
        }
        out
    }
}

/// Droop classification is total over `0..=pmds` utilized PMDs,
/// non-decreasing, and the policy table's self-contained copy agrees
/// with the chip model's.
pub struct DroopClassTotalMonotone;

impl Invariant for DroopClassTotalMonotone {
    fn name(&self) -> &'static str {
        "droop-class-total-monotone"
    }
    fn description(&self) -> &'static str {
        "droop classification is total, monotone, and consistent between model and policy"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let pmds = cx.spec.pmds() as usize;
        let mut prev = DroopClass::D25;
        for utilized in 0..=pmds {
            let dc = DroopClass::from_utilized_pmds(&cx.spec, utilized);
            if dc < prev {
                out.push(violation(
                    self.name(),
                    format!("from_utilized_pmds({utilized})"),
                    format!("class {dc} is below the {}-PMD class {prev}", utilized - 1),
                ));
            }
            prev = dc;
            if cx.policy.pmds() == pmds && cx.policy.droop_class(utilized) != dc {
                out.push(violation(
                    self.name(),
                    format!("policy.droop_class({utilized})"),
                    format!(
                        "policy says {}, the chip model says {dc}",
                        cx.policy.droop_class(utilized)
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Policy-table invariants.
// ---------------------------------------------------------------------

fn policy_cells(
    policy: &PolicyTable,
) -> impl Iterator<Item = (FreqVminClass, &'static str, DroopClass, usize, u32)> + '_ {
    FREQ_CLASSES.into_iter().flat_map(move |(fc, _, fc_name)| {
        DroopClass::ALL.into_iter().flat_map(move |dc| {
            (0..PolicyTable::THREAD_BUCKETS)
                .map(move |bucket| (fc, fc_name, dc, bucket, policy.cell(fc, dc, bucket)))
        })
    })
}

/// Every `FreqVminClass × DroopClass × thread-bucket` cell must be
/// characterized: a zero cell is a hole the daemon could fall through.
pub struct PolicyTotality;

impl Invariant for PolicyTotality {
    fn name(&self) -> &'static str {
        "policy-totality"
    }
    fn description(&self) -> &'static str {
        "the policy table has a characterized voltage for every cell"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        policy_cells(&cx.policy)
            .filter(|&(_, _, _, _, mv)| mv == 0)
            .map(|(_, fc_name, dc, bucket, _)| {
                violation(
                    self.name(),
                    format!(
                        "policy[{fc_name}][{}][bucket {bucket}]",
                        DROOP_NAMES[dc.index()]
                    ),
                    "uncharacterized (0mV) cell: the daemon would drive the rail \
                     to 0mV for this configuration"
                        .to_string(),
                )
            })
            .collect()
    }
}

/// Every policy voltage must be programmable: within the regulated
/// `[floor, nominal]` window of the characterized chip.
pub struct PolicyWithinRail;

impl Invariant for PolicyWithinRail {
    fn name(&self) -> &'static str {
        "policy-within-rail"
    }
    fn description(&self) -> &'static str {
        "every policy voltage fits the regulated rail window"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let nominal = cx.policy.nominal().as_mv();
        let floor = cx.spec.vreg_floor_mv;
        policy_cells(&cx.policy)
            .filter(|&(_, _, _, _, mv)| mv != 0 && (mv < floor || mv > nominal))
            .map(|(_, fc_name, dc, bucket, mv)| {
                violation(
                    self.name(),
                    format!(
                        "policy[{fc_name}][{}][bucket {bucket}]",
                        DROOP_NAMES[dc.index()]
                    ),
                    format!("{mv}mV is outside the regulated window [{floor}mV, {nominal}mV]"),
                )
            })
            .collect()
    }
}

/// Policy voltages are monotone: non-decreasing in droop class and
/// frequency class, non-increasing across thread buckets (more threads →
/// smaller workload margin, §III-A).
pub struct PolicyMonotone;

impl Invariant for PolicyMonotone {
    fn name(&self) -> &'static str {
        "policy-monotone"
    }
    fn description(&self) -> &'static str {
        "policy voltages are monotone in droop class, frequency class, and threads"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let p = &cx.policy;
        for (fc, _, fc_name) in FREQ_CLASSES {
            for bucket in 0..PolicyTable::THREAD_BUCKETS {
                for w in DroopClass::ALL.windows(2) {
                    let (lo, hi) = (p.cell(fc, w[0], bucket), p.cell(fc, w[1], bucket));
                    if hi < lo {
                        out.push(violation(
                            self.name(),
                            format!(
                                "policy[{fc_name}][{}][bucket {bucket}]",
                                DROOP_NAMES[w[1].index()]
                            ),
                            format!("{hi}mV drops below the narrower class's {lo}mV"),
                        ));
                    }
                }
            }
        }
        for dc in DroopClass::ALL {
            for bucket in 0..PolicyTable::THREAD_BUCKETS {
                for w in FREQ_CLASSES.windows(2) {
                    let (lo, hi) = (p.cell(w[0].0, dc, bucket), p.cell(w[1].0, dc, bucket));
                    if hi < lo {
                        out.push(violation(
                            self.name(),
                            format!(
                                "policy[{}][{}][bucket {bucket}]",
                                w[1].2,
                                DROOP_NAMES[dc.index()]
                            ),
                            format!("{hi}mV drops below the slower class's {lo}mV"),
                        ));
                    }
                }
            }
        }
        for (fc, _, fc_name) in FREQ_CLASSES {
            for dc in DroopClass::ALL {
                for bucket in 1..PolicyTable::THREAD_BUCKETS {
                    let (prev, cur) = (p.cell(fc, dc, bucket - 1), p.cell(fc, dc, bucket));
                    if cur > prev {
                        out.push(violation(
                            self.name(),
                            format!(
                                "policy[{fc_name}][{}][bucket {bucket}]",
                                DROOP_NAMES[dc.index()]
                            ),
                            format!(
                                "{cur}mV exceeds the smaller bucket's {prev}mV: more \
                                 threads must not need more margin"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Driving voltage from the table must be safe for *any* matching
/// allocation and workload on the chip — the property the whole
/// characterization exists to guarantee.
pub struct PolicyCoversModel;

impl Invariant for PolicyCoversModel {
    fn name(&self) -> &'static str {
        "policy-covers-model"
    }
    fn description(&self) -> &'static str {
        "every policy voltage covers the model's worst-case safe Vmin"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        if cx.policy.pmds() != cx.spec.pmds() as usize {
            return out; // incomparable: policy characterized another chip
        }
        let model = cx.chip.vmin_model();
        for (fc, _, fc_name) in FREQ_CLASSES {
            for utilized in 1..=cx.policy.pmds() {
                let threads = utilized * cx.spec.cores_per_pmd as usize;
                let policy_v = cx.policy.safe_voltage_for_pmds(fc, utilized, threads);
                let q = VminQuery {
                    freq_class: fc,
                    utilized_pmds: utilized,
                    active_threads: threads,
                    workload_sensitivity: 1.0,
                };
                let worst_pmds: Vec<PmdId> = (0..utilized as u16).map(PmdId::new).collect();
                let real_v = model.safe_vmin_on(&q, &worst_pmds);
                if policy_v < real_v {
                    out.push(violation(
                        self.name(),
                        format!("policy[{fc_name}][{utilized} PMDs]"),
                        format!(
                            "table voltage {policy_v} undervolts the model's \
                             worst-case safe Vmin {real_v}"
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Power / EDP.
// ---------------------------------------------------------------------

fn load_grid(cx: &AnalysisContext) -> Vec<(String, PowerInputs)> {
    let pmds = cx.spec.pmds() as usize;
    let full = |voltage| PowerInputs {
        voltage,
        pmd_loads: vec![
            PmdLoad {
                freq_mhz: cx.spec.fmax_mhz,
                active_cores: cx.spec.cores_per_pmd as u8,
                activity: 1.0,
            };
            pmds
        ],
        mem_traffic: 1.0,
    };
    let idle = |voltage| PowerInputs {
        voltage,
        pmd_loads: vec![PmdLoad::IDLE; pmds],
        mem_traffic: 0.0,
    };
    let mixed = |voltage| {
        let mut loads = vec![PmdLoad::IDLE; pmds];
        loads[0] = PmdLoad {
            freq_mhz: cx.spec.fmax_mhz / 2,
            active_cores: 1,
            activity: 0.4,
        };
        PowerInputs {
            voltage,
            pmd_loads: loads,
            mem_traffic: 0.3,
        }
    };
    let floor = Millivolts::new(cx.spec.vreg_floor_mv);
    let nominal = Millivolts::new(cx.spec.nominal_mv);
    let mid = Millivolts::new((cx.spec.vreg_floor_mv + cx.spec.nominal_mv) / 2);
    let mut grid = Vec::new();
    for v in [floor, mid, nominal] {
        grid.push((format!("full load @ {v}"), full(v)));
        grid.push((format!("idle @ {v}"), idle(v)));
        grid.push((format!("mixed @ {v}"), mixed(v)));
    }
    grid
}

/// Power is finite and non-negative for every reachable load point, and
/// the idle chip never draws more than the fully loaded one.
pub struct PowerNonNegative;

impl Invariant for PowerNonNegative {
    fn name(&self) -> &'static str {
        "power-non-negative"
    }
    fn description(&self) -> &'static str {
        "the power model is finite and non-negative over the load grid"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let power = cx.chip.power_model();
        for (label, inputs) in load_grid(cx) {
            let w = power.power_w(&inputs);
            if !w.is_finite() || w < 0.0 {
                out.push(violation(
                    self.name(),
                    label,
                    format!("power {w}W is negative or non-finite"),
                ));
            }
        }
        let nominal = Millivolts::new(cx.spec.nominal_mv);
        let pmds = cx.spec.pmds() as usize;
        let idle = power.idle_power_w(nominal, pmds);
        let full = power.power_w(&load_grid(cx)[6].1); // full load @ nominal
        if idle > full {
            out.push(violation(
                self.name(),
                "idle vs full @ nominal".to_string(),
                format!("idle power {idle:.2}W exceeds full-load power {full:.2}W"),
            ));
        }
        out
    }
}

/// At fixed load, lowering the rail must never raise power — the fact
/// that makes undervolting worth doing at all.
pub struct PowerMonotoneInVoltage;

impl Invariant for PowerMonotoneInVoltage {
    fn name(&self) -> &'static str {
        "power-monotone-voltage"
    }
    fn description(&self) -> &'static str {
        "power is non-decreasing in rail voltage at fixed load"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let mut out = Vec::new();
        let power = cx.chip.power_model();
        let pmds = cx.spec.pmds() as usize;
        let mut prev: Option<(u32, f64)> = None;
        let lo = cx.spec.vreg_floor_mv;
        let hi = cx.spec.nominal_mv;
        for i in 0..=8u32 {
            let mv = lo + (hi - lo) * i / 8;
            let inputs = PowerInputs {
                voltage: Millivolts::new(mv),
                pmd_loads: vec![
                    PmdLoad {
                        freq_mhz: cx.spec.fmax_mhz,
                        active_cores: cx.spec.cores_per_pmd as u8,
                        activity: 0.8,
                    };
                    pmds
                ],
                mem_traffic: 0.5,
            };
            let w = power.power_w(&inputs);
            if let Some((prev_mv, prev_w)) = prev {
                if w < prev_w {
                    out.push(violation(
                        self.name(),
                        format!("power({mv}mV)"),
                        format!("{w:.3}W is below the {prev_mv}mV point's {prev_w:.3}W"),
                    ));
                }
            }
            prev = Some((mv, w));
        }
        out
    }
}

/// The ED²P scaling estimates behave physically: delay never shrinks
/// under a frequency reduction, all multipliers are positive and finite,
/// and full speed at nominal voltage is the identity.
pub struct EdpEstimatesSane;

impl Invariant for EdpEstimatesSane {
    fn name(&self) -> &'static str {
        "edp-estimates-sane"
    }
    fn description(&self) -> &'static str {
        "ED2P scaling estimates are positive, finite, and identity at full speed"
    }
    fn check(&self, cx: &AnalysisContext) -> Vec<Violation> {
        let _ = cx;
        let mut out = Vec::new();
        for mem_x100 in [0u32, 20, 50, 85] {
            for ratio_x8 in 1..=8u32 {
                let mem = mem_x100 as f64 / 100.0;
                let ratio = ratio_x8 as f64 / 8.0;
                let est = scaling_estimate(mem, ratio, 0.7, 0.9);
                let loc = format!("scaling_estimate(m={mem}, r={ratio})");
                if !(est.delay.is_finite()
                    && est.dynamic_energy.is_finite()
                    && est.ed2p.is_finite())
                {
                    out.push(violation(
                        self.name(),
                        loc,
                        "non-finite scaling estimate".to_string(),
                    ));
                    continue;
                }
                if est.delay < 1.0 - 1e-9 {
                    out.push(violation(
                        self.name(),
                        loc.clone(),
                        format!("delay multiplier {} below 1 for a slowdown", est.delay),
                    ));
                }
                if est.dynamic_energy <= 0.0 || est.ed2p <= 0.0 {
                    out.push(violation(
                        self.name(),
                        loc,
                        format!(
                            "non-positive energy {} or ED2P {}",
                            est.dynamic_energy, est.ed2p
                        ),
                    ));
                }
            }
        }
        let identity = scaling_estimate(0.3, 1.0, 0.7, 1.0);
        if (identity.ed2p - 1.0).abs() > 1e-9 {
            out.push(violation(
                self.name(),
                "scaling_estimate(r=1, v=1)".to_string(),
                format!("full speed is not the identity: ED2P {}", identity.ed2p),
            ));
        }
        out
    }
}
