//! `avfs-analyze` — invariant checker, domain lints, race explorer,
//! bounded model checker, and policy-domain prover.
//!
//! ```text
//! cargo run -p avfs-analyze -- invariants
//! cargo run -p avfs-analyze -- lint [--update-allowlist]
//! cargo run -p avfs-analyze -- race [--schedules N] [--events N] [--seed S] [--fault-rate F]
//! cargo run -p avfs-analyze -- fleet [--seed S]
//! cargo run -p avfs-analyze -- model [--depth N] [--max-procs N]
//! cargo run -p avfs-analyze -- prove-policy [--measured] [--seed S]
//! cargo run -p avfs-analyze -- check-margins [--seed S]
//! cargo run -p avfs-analyze -- all
//! ```
//!
//! Every subcommand accepts `--format text|json`. Exit codes: 0 clean,
//! 1 violations found, 2 usage error — so CI can distinguish "the code
//! is broken" from "the invocation is broken" (`scripts/check.sh` runs
//! the gates individually).

use avfs_analyze::invariant::{check_all, registry};
use avfs_analyze::jsonout::{string, string_array};
use avfs_analyze::{fleet, lint, margins, model, proof, race};
use std::collections::BTreeMap;
use std::process::ExitCode;

const EXIT_CLEAN: u8 = 0;
const EXIT_VIOLATIONS: u8 = 1;
const EXIT_USAGE: u8 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage() {
    eprintln!(
        "usage: avfs-analyze <subcommand> [flags]\n\
         \n\
         subcommands:\n\
         \x20 invariants                 evaluate the domain-invariant registry on both presets\n\
         \x20 lint [--update-allowlist]  ratcheted source lints over crates/*/src\n\
         \x20 race [--schedules N] [--events N] [--seed S] [--fault-rate F]\n\
         \x20                            seeded interleaving exploration\n\
         \x20 fleet [--seed S]           cluster-level conservation/safety checks\n\
         \x20 model [--depth N] [--max-procs N]\n\
         \x20                            exhaustive bounded model checking with DPOR\n\
         \x20 prove-policy [--measured] [--seed S]\n\
         \x20                            enumerate the full voltage-policy domain\n\
         \x20                            (--measured proves campaign-compiled tables)\n\
         \x20 check-margins [--seed S]   audit measured margin maps against ground truth\n\
         \x20 all                        every gate above, in order\n\
         \n\
         every subcommand accepts --format text|json\n\
         exit codes: 0 clean, 1 violations, 2 usage error"
    );
}

/// Strict flag parsing: every argument must be a known flag; value
/// flags must have a value. Anything else is a usage error.
fn parse_args(
    args: &[String],
    value_flags: &[&str],
    bare_flags: &[&str],
) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if bare_flags.contains(&a) {
            out.insert(a.to_string(), String::new());
            i += 1;
        } else if value_flags.contains(&a) {
            let Some(v) = args.get(i + 1) else {
                return Err(format!("flag {a} requires a value"));
            };
            out.insert(a.to_string(), v.clone());
            i += 2;
        } else {
            return Err(format!("unknown flag: {a}"));
        }
    }
    Ok(out)
}

fn get_format(flags: &BTreeMap<String, String>) -> Result<Format, String> {
    match flags.get("--format").map(String::as_str) {
        None | Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => Err(format!("--format must be text or json, got {other}")),
    }
}

fn get_usize(
    flags: &BTreeMap<String, String>,
    flag: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag {flag}: invalid value {v:?}")),
    }
}

fn get_u64(flags: &BTreeMap<String, String>, flag: &str, default: u64) -> Result<u64, String> {
    match flags.get(flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag {flag}: invalid value {v:?}")),
    }
}

fn get_f64(flags: &BTreeMap<String, String>, flag: &str, default: f64) -> Result<f64, String> {
    match flags.get(flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag {flag}: invalid value {v:?}")),
    }
}

/// One gate's outcome: whether it was clean, and its JSON rendering
/// (emitted when `--format json`; `all` aggregates them).
struct Outcome {
    clean: bool,
    json: String,
}

fn run_invariants(format: Format) -> Outcome {
    let checks = registry();
    if format == Format::Text {
        println!("registered invariants: {}", checks.len());
        for inv in &checks {
            println!("  {:<26} {}", inv.name(), inv.description());
        }
    }
    let mut clean = true;
    let mut presets_json = Vec::new();
    for cx in avfs_analyze::AnalysisContext::presets() {
        let violations: Vec<String> = check_all(&cx).iter().map(|v| v.to_string()).collect();
        if format == Format::Text {
            if violations.is_empty() {
                println!("{}: all {} invariants hold", cx.name, checks.len());
            } else {
                println!("{}: {} violation(s)", cx.name, violations.len());
                for v in &violations {
                    println!("  {v}");
                }
            }
        }
        clean &= violations.is_empty();
        presets_json.push(format!(
            "{{\"name\":{},\"violations\":{}}}",
            string(&cx.name),
            string_array(&violations)
        ));
    }
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"invariants\",\"registered\":{},\"presets\":[{}],\"clean\":{clean}}}",
            checks.len(),
            presets_json.join(",")
        ),
    }
}

fn run_lint(format: Format, update_allowlist: bool) -> Outcome {
    let root = lint::workspace_root();
    let allowlist_path = root.join("crates/analyze/lint-allowlist.txt");
    let allowlist = std::fs::read_to_string(&allowlist_path)
        .map(|text| lint::parse_allowlist(&text))
        .unwrap_or_default();
    let report = lint::run(&root, &allowlist);
    if format == Format::Text {
        println!(
            "linted {} files: {} finding(s), {} over the allowlist, {} stale allowlist entr{}",
            report.files,
            report.findings.len(),
            report.new_violations.len(),
            report.stale.len(),
            if report.stale.len() == 1 { "y" } else { "ies" }
        );
    }
    if update_allowlist {
        let rendered = lint::render_allowlist(&report.findings);
        match std::fs::write(&allowlist_path, rendered) {
            Ok(()) => {
                println!("allowlist regenerated at {}", allowlist_path.display());
                return Outcome {
                    clean: true,
                    json: "{\"command\":\"lint\",\"updated\":true}".to_string(),
                };
            }
            Err(e) => {
                eprintln!("failed to write {}: {e}", allowlist_path.display());
                return Outcome {
                    clean: false,
                    json: "{\"command\":\"lint\",\"updated\":false}".to_string(),
                };
            }
        }
    }
    if format == Format::Text {
        for (rule, path, found, allowed) in &report.new_violations {
            println!("NEW [{rule}] {path}: {found} found, {allowed} allowlisted");
            for f in report
                .findings
                .iter()
                .filter(|f| f.rule == rule && f.path == *path)
            {
                println!("  {f}");
            }
        }
        for (rule, path, found, allowed) in &report.stale {
            println!(
                "STALE [{rule}] {path}: allowlist froze {allowed} but only {found} remain — \
                 tighten the allowlist to {found} (edit lint-allowlist.txt or rerun with --update-allowlist)"
            );
        }
    }
    let entry_json = |entries: &[(String, String, usize, usize)]| -> String {
        let rendered: Vec<String> = entries
            .iter()
            .map(|(rule, path, found, allowed)| {
                format!(
                    "{{\"rule\":{},\"path\":{},\"found\":{found},\"allowed\":{allowed}}}",
                    string(rule),
                    string(path)
                )
            })
            .collect();
        format!("[{}]", rendered.join(","))
    };
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"lint\",\"files\":{},\"findings\":{},\"new_violations\":{},\"stale\":{},\"clean\":{clean}}}",
            report.files,
            report.findings.len(),
            entry_json(&report.new_violations),
            entry_json(&report.stale)
        ),
    }
}

fn run_race(
    format: Format,
    schedules: usize,
    events: usize,
    seed: u64,
    fault_rate: f64,
) -> Outcome {
    let report = race::explore_with_faults(schedules, events, seed, fault_rate);
    if format == Format::Text {
        println!("{report}");
        for v in &report.violations {
            println!("  {v}");
        }
    }
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"race\",\"schedules\":{},\"events\":{},\"actions\":{},\"checks\":{},\"faults\":{},\"violations\":{},\"clean\":{clean}}}",
            report.schedules,
            report.events,
            report.actions,
            report.checks,
            report.faults,
            string_array(&report.violations)
        ),
    }
}

fn run_fleet(format: Format, seed: u64) -> Outcome {
    let report = fleet::explore(seed);
    let violations: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    if format == Format::Text {
        println!("{report}");
        for v in &violations {
            println!("  {v}");
        }
    }
    let policies: Vec<String> = report.policies.iter().map(|p| p.to_string()).collect();
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"fleet\",\"policies\":{},\"submitted\":{},\"violations\":{},\"clean\":{clean}}}",
            string_array(&policies),
            report.submitted,
            string_array(&violations)
        ),
    }
}

fn counterexample_json(cx: &model::Counterexample) -> String {
    let labels: Vec<String> = cx.schedule.iter().map(|e| e.label()).collect();
    format!(
        "{{\"original_len\":{},\"schedule\":{},\"violations\":{}}}",
        cx.original_len,
        string_array(&labels),
        string_array(&cx.violations)
    )
}

fn run_model(format: Format, depth: usize, max_procs: usize) -> Outcome {
    let opts = model::ModelOptions {
        depth,
        max_procs,
        dpor: true,
    };
    let report = model::check(&opts);
    if format == Format::Text {
        println!("bounded model check, depth {}:", report.depth);
        for p in &report.presets {
            println!("  {p}");
            for v in &p.registry_violations {
                println!("    registry: {v}");
            }
            if let Some(cx) = &p.counterexample {
                print!("{cx}");
            }
        }
    }
    let presets_json: Vec<String> = report
        .presets
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"states\":{},\"transitions\":{},\"cache_hits\":{},\"dpor_skips\":{},\"dpor_pairs\":{},\"reduction_factor\":{:.3},\"bound_hits\":{},\"checks\":{},\"registry_violations\":{},\"counterexample\":{}}}",
                string(&p.name),
                p.states,
                p.transitions,
                p.cache_hits,
                p.dpor_skips,
                p.dpor_pairs,
                p.reduction_factor(),
                p.bound_hits,
                p.checks,
                string_array(&p.registry_violations),
                p.counterexample
                    .as_ref()
                    .map_or_else(|| "null".to_string(), counterexample_json)
            )
        })
        .collect();
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"model\",\"depth\":{},\"presets\":[{}],\"clean\":{clean}}}",
            report.depth,
            presets_json.join(",")
        ),
    }
}

fn run_prove_policy(format: Format, measured: bool, seed: u64) -> Outcome {
    let report = if measured {
        margins::prove_measured(seed)
    } else {
        proof::prove()
    };
    if format == Format::Text {
        print!("{report}");
    }
    let presets_json: Vec<String> = report
        .presets
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"cells\":{},\"min_guardband_mv\":{},\"violations\":{}}}",
                string(&p.name),
                p.cells,
                p.min_guardband_mv,
                string_array(&p.violations)
            )
        })
        .collect();
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"prove-policy\",\"measured\":{measured},\"cells\":{},\"presets\":[{}],\"clean\":{clean}}}",
            report.cells(),
            presets_json.join(",")
        ),
    }
}

fn run_check_margins(format: Format, seed: u64) -> Outcome {
    let report = margins::check(seed);
    if format == Format::Text {
        print!("{report}");
    }
    let presets_json: Vec<String> = report
        .presets
        .iter()
        .map(|p| {
            let proof_json = p.proof.as_ref().map_or_else(
                || "null".to_string(),
                |proof| {
                    format!(
                        "{{\"cells\":{},\"min_guardband_mv\":{},\"violations\":{}}}",
                        proof.cells,
                        proof.min_guardband_mv,
                        string_array(&proof.violations)
                    )
                },
            );
            format!(
                "{{\"name\":{},\"measured_cells\":{},\"probes\":{},\"discarded\":{},\"min_truth_slack_mv\":{},\"violations\":{},\"proof\":{proof_json}}}",
                string(&p.name),
                p.measured_cells,
                p.probes,
                p.discarded,
                p.min_truth_slack_mv,
                string_array(&p.violations)
            )
        })
        .collect();
    let clean = report.is_clean();
    Outcome {
        clean,
        json: format!(
            "{{\"command\":\"check-margins\",\"seed\":{},\"presets\":[{}],\"clean\":{clean}}}",
            report.seed,
            presets_json.join(",")
        ),
    }
}

fn dispatch(cmd: &str, rest: &[String]) -> Result<(Format, Outcome), String> {
    match cmd {
        "invariants" => {
            let flags = parse_args(rest, &["--format"], &[])?;
            let format = get_format(&flags)?;
            Ok((format, run_invariants(format)))
        }
        "lint" => {
            let flags = parse_args(rest, &["--format"], &["--update-allowlist"])?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_lint(format, flags.contains_key("--update-allowlist")),
            ))
        }
        "race" => {
            let flags = parse_args(
                rest,
                &[
                    "--format",
                    "--schedules",
                    "--events",
                    "--seed",
                    "--fault-rate",
                ],
                &[],
            )?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_race(
                    format,
                    get_usize(&flags, "--schedules", 160)?,
                    get_usize(&flags, "--events", 24)?,
                    get_u64(&flags, "--seed", 0xA5F5_0001)?,
                    get_f64(&flags, "--fault-rate", 0.0)?,
                ),
            ))
        }
        "fleet" => {
            let flags = parse_args(rest, &["--format", "--seed"], &[])?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_fleet(format, get_u64(&flags, "--seed", 0xF1EE_7001)?),
            ))
        }
        "model" => {
            let flags = parse_args(rest, &["--format", "--depth", "--max-procs"], &[])?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_model(
                    format,
                    get_usize(&flags, "--depth", 6)?,
                    get_usize(&flags, "--max-procs", 2)?,
                ),
            ))
        }
        "prove-policy" => {
            let flags = parse_args(rest, &["--format", "--seed"], &["--measured"])?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_prove_policy(
                    format,
                    flags.contains_key("--measured"),
                    get_u64(&flags, "--seed", margins::DEFAULT_SEED)?,
                ),
            ))
        }
        "check-margins" => {
            let flags = parse_args(rest, &["--format", "--seed"], &[])?;
            let format = get_format(&flags)?;
            Ok((
                format,
                run_check_margins(format, get_u64(&flags, "--seed", margins::DEFAULT_SEED)?),
            ))
        }
        "all" => {
            let flags = parse_args(rest, &["--format"], &[])?;
            let format = get_format(&flags)?;
            let outcomes = vec![
                run_invariants(format),
                run_lint(format, false),
                run_race(format, 160, 24, 0xA5F5_0001, 0.0),
                run_race(format, 96, 24, 0xFA17_0002, 0.10),
                run_fleet(format, 0xF1EE_7001),
                run_model(format, 6, 2),
                run_prove_policy(format, false, margins::DEFAULT_SEED),
                run_check_margins(format, margins::DEFAULT_SEED),
            ];
            let clean = outcomes.iter().all(|o| o.clean);
            let parts: Vec<String> = outcomes.into_iter().map(|o| o.json).collect();
            Ok((
                format,
                Outcome {
                    clean,
                    json: format!(
                        "{{\"command\":\"all\",\"results\":[{}],\"clean\":{clean}}}",
                        parts.join(",")
                    ),
                },
            ))
        }
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(EXIT_USAGE);
    };
    match dispatch(cmd, &args[1..]) {
        Ok((format, outcome)) => {
            if format == Format::Json {
                // JSON mode prints exactly one object on stdout.
                println!("{}", outcome.json);
            }
            ExitCode::from(if outcome.clean {
                EXIT_CLEAN
            } else {
                EXIT_VIOLATIONS
            })
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            usage();
            ExitCode::from(EXIT_USAGE)
        }
    }
}
