//! `avfs-analyze` — invariant checker, domain lints, and race explorer.
//!
//! ```text
//! cargo run -p avfs-analyze -- invariants
//! cargo run -p avfs-analyze -- lint [--update-allowlist]
//! cargo run -p avfs-analyze -- race [--schedules N] [--events N] [--seed S] [--fault-rate F]
//! cargo run -p avfs-analyze -- fleet [--seed S]
//! cargo run -p avfs-analyze -- all
//! ```
//!
//! Every subcommand exits nonzero when it finds a violation, so the whole
//! binary can gate CI (`scripts/check.sh` runs `all`).

use avfs_analyze::invariant::{check_all, registry};
use avfs_analyze::{fleet, lint, race};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: avfs-analyze <invariants | lint [--update-allowlist] | \
         race [--schedules N] [--events N] [--seed S] [--fault-rate F] | \
         fleet [--seed S] | all>"
    );
    ExitCode::from(2)
}

fn run_invariants() -> bool {
    let checks = registry();
    println!("registered invariants: {}", checks.len());
    for inv in &checks {
        println!("  {:<26} {}", inv.name(), inv.description());
    }
    let mut clean = true;
    for cx in avfs_analyze::AnalysisContext::presets() {
        let violations = check_all(&cx);
        if violations.is_empty() {
            println!("{}: all {} invariants hold", cx.name, checks.len());
        } else {
            clean = false;
            println!("{}: {} violation(s)", cx.name, violations.len());
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    clean
}

fn run_lint(update_allowlist: bool) -> bool {
    let root = lint::workspace_root();
    let allowlist_path = root.join("crates/analyze/lint-allowlist.txt");
    let allowlist = std::fs::read_to_string(&allowlist_path)
        .map(|text| lint::parse_allowlist(&text))
        .unwrap_or_default();
    let report = lint::run(&root, &allowlist);
    println!(
        "linted {} files: {} finding(s), {} over the allowlist",
        report.files,
        report.findings.len(),
        report.new_violations.len()
    );
    if update_allowlist {
        let rendered = lint::render_allowlist(&report.findings);
        match std::fs::write(&allowlist_path, rendered) {
            Ok(()) => {
                println!("allowlist regenerated at {}", allowlist_path.display());
                return true;
            }
            Err(e) => {
                eprintln!("failed to write {}: {e}", allowlist_path.display());
                return false;
            }
        }
    }
    if report.is_clean() {
        return true;
    }
    for (rule, path, found, allowed) in &report.new_violations {
        println!("NEW [{rule}] {path}: {found} found, {allowed} allowlisted");
        for f in report
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.path == *path)
        {
            println!("  {f}");
        }
    }
    false
}

fn run_race(schedules: usize, events: usize, seed: u64, fault_rate: f64) -> bool {
    let report = race::explore_with_faults(schedules, events, seed, fault_rate);
    println!("{report}");
    if !report.is_clean() {
        for v in &report.violations {
            println!("  {v}");
        }
    }
    report.is_clean()
}

fn run_fleet(seed: u64) -> bool {
    let report = fleet::explore(seed);
    println!("{report}");
    for v in &report.violations {
        println!("  {v}");
    }
    report.is_clean()
}

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_f64_flag(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let ok = match cmd {
        "invariants" => run_invariants(),
        "lint" => run_lint(args.iter().any(|a| a == "--update-allowlist")),
        "race" => {
            let schedules = parse_flag(&args, "--schedules", 160) as usize;
            let events = parse_flag(&args, "--events", 24) as usize;
            let seed = parse_flag(&args, "--seed", 0xA5F5_0001);
            let fault_rate = parse_f64_flag(&args, "--fault-rate", 0.0);
            run_race(schedules, events, seed, fault_rate)
        }
        "fleet" => run_fleet(parse_flag(&args, "--seed", 0xF1EE_7001)),
        "all" => {
            let inv = run_invariants();
            let lint_ok = run_lint(false);
            let race_ok = run_race(160, 24, 0xA5F5_0001, 0.0);
            let fault_race_ok = run_race(96, 24, 0xFA17_0002, 0.10);
            let fleet_ok = run_fleet(0xF1EE_7001);
            inv && lint_ok && race_ok && fault_race_ok && fleet_ok
        }
        _ => return usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
