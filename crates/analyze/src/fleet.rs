//! Dynamic fleet checks: cluster-level invariants and the worker-count
//! determinism contract.
//!
//! The fleet layer promises that (a) the cluster front door never loses
//! a job — every submission is admitted or shed, and every admitted job
//! completes once the fleet drains; (b) per-node daemons stay inside
//! their safety envelope under cluster-induced load patterns (batched
//! epoch admissions, oversubscription); and (c) results are
//! byte-identical for any worker count. This module replays one seeded
//! mixed-cluster workload under each built-in routing policy and
//! asserts all three, reporting violations as data the same way the
//! static invariants do.

use crate::invariant::Violation;
use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetSummary, LeastQueued, NodeConfig, NodeFaultKind,
    NodeFaultPlan, NodeId, NodeKind, RoundRobin, RoutingPolicy, ScriptedFault,
};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};
use std::collections::BTreeSet;
use std::fmt;

/// Outcome of one fleet exploration run.
#[derive(Debug)]
pub struct FleetReport {
    /// Policies exercised.
    pub policies: Vec<&'static str>,
    /// Jobs submitted per policy run (identical trace each time).
    pub submitted: u64,
    /// Violations found across all runs.
    pub violations: Vec<Violation>,
}

impl FleetReport {
    /// True when no run violated a fleet invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet: {} policies x {} jobs, {} violation(s)",
            self.policies.len(),
            self.submitted,
            self.violations.len()
        )
    }
}

fn violation(name: &'static str, location: String, message: String) -> Violation {
    Violation {
        invariant: name,
        location,
        message,
    }
}

/// The small mixed cluster every check runs against.
fn cluster(workers: usize, seed: u64) -> FleetConfig {
    let nodes = vec![
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(1)),
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(2)),
        NodeConfig::new(NodeKind::XGene3, seed.wrapping_add(3)),
    ];
    let mut cfg = FleetConfig::new(nodes);
    cfg.workers = workers;
    cfg.telemetry = true;
    cfg
}

fn trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(48, seed);
    cfg.duration = SimDuration::from_secs(60);
    cfg.job_scale = 0.3;
    WorkloadTrace::generate(&cfg)
}

/// Per-summary invariants: conservation, safety, aggregate consistency.
fn check_summary(policy: &'static str, s: &FleetSummary, out: &mut Vec<Violation>) {
    let a = s.admission;
    if a.submitted != a.admitted + a.shed_full + a.shed_unroutable {
        out.push(violation(
            "fleet-conservation",
            format!("policy {policy}"),
            format!(
                "submitted {} != admitted {} + shed {}",
                a.submitted,
                a.admitted,
                a.shed()
            ),
        ));
    }
    if !s.conserves_jobs() {
        out.push(violation(
            "fleet-conservation",
            format!("policy {policy}"),
            format!(
                "admitted {} but completed {} after drain",
                a.admitted, s.completed
            ),
        ));
    }
    if s.failures != 0 || s.unsafe_time_s > 0.0 {
        out.push(violation(
            "fleet-safety",
            format!("policy {policy}"),
            format!(
                "cluster ran unsafely: failures={} unsafe_time={}s",
                s.failures, s.unsafe_time_s
            ),
        ));
    }
    let node_energy: f64 = s.nodes.iter().map(|n| n.metrics.energy_j).sum();
    if (node_energy - s.cluster_energy_j).abs() > 1e-6 * s.cluster_energy_j.max(1.0) {
        out.push(violation(
            "fleet-aggregation",
            format!("policy {policy}"),
            format!(
                "cluster energy {} != sum of node energies {}",
                s.cluster_energy_j, node_energy
            ),
        ));
    }
    let max_makespan = s
        .nodes
        .iter()
        .map(|n| n.metrics.makespan)
        .max()
        .unwrap_or(SimDuration::ZERO);
    if s.cluster_makespan != max_makespan {
        out.push(violation(
            "fleet-aggregation",
            format!("policy {policy}"),
            format!(
                "cluster makespan {:?} != max node makespan {:?}",
                s.cluster_makespan, max_makespan
            ),
        ));
    }
}

/// Runs the fleet checks: every policy once, plus a 1-vs-4-worker
/// determinism pair per policy.
pub fn explore(seed: u64) -> FleetReport {
    let t = trace(seed);
    let mut violations = Vec::new();
    let policies: Vec<&'static str> = vec!["round-robin", "least-queued", "energy-aware"];
    let fresh = |name: &str| -> Box<dyn RoutingPolicy> {
        match name {
            "round-robin" => Box::new(RoundRobin::new()),
            "least-queued" => Box::new(LeastQueued::new()),
            _ => Box::new(EnergyAware::new()),
        }
    };
    let mut submitted = 0;
    for &name in &policies {
        let one = Fleet::builder()
            .config(cluster(1, seed))
            .build()
            .run(&t, fresh(name).as_mut());
        submitted = one.admission.submitted;
        check_summary(name, &one, &mut violations);
        let four = Fleet::builder()
            .config(cluster(4, seed))
            .build()
            .run(&t, fresh(name).as_mut());
        if one.fingerprint() != four.fingerprint() {
            violations.push(violation(
                "fleet-determinism",
                format!("policy {name}"),
                "summary fingerprint diverged between 1 and 4 workers".to_string(),
            ));
        }
        if one.journal != four.journal {
            violations.push(violation(
                "fleet-determinism",
                format!("policy {name}"),
                "telemetry journal diverged between 1 and 4 workers".to_string(),
            ));
        }
    }
    check_resilience(seed, &mut violations);
    check_shed_accounting(seed, &mut violations);
    FleetReport {
        policies,
        submitted,
        violations,
    }
}

/// The scripted-failure cluster: four nodes, one of each fault kind.
/// The degrade and stall are fixed; the crash placement is supplied by
/// the caller (see `check_resilience`'s candidate probe).
fn failing_cluster(workers: usize, seed: u64, crash: ScriptedFault) -> FleetConfig {
    let nodes = vec![
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(1)),
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(2)),
        NodeConfig::new(NodeKind::XGene3, seed.wrapping_add(3)),
        NodeConfig::new(NodeKind::XGene3, seed.wrapping_add(4)),
    ];
    let mut cfg = FleetConfig::new(nodes);
    cfg.workers = workers;
    cfg.telemetry = true;
    cfg.audit = true;
    cfg.fault_plan = Some(NodeFaultPlan::scripted(vec![
        ScriptedFault {
            epoch: 2,
            node: NodeId(0),
            kind: NodeFaultKind::Degrade,
        },
        crash,
        ScriptedFault {
            epoch: 5,
            node: NodeId(2),
            kind: NodeFaultKind::Stall { epochs: 6 },
        },
    ]));
    cfg
}

/// Denser, longer jobs than the clean-run trace so nodes hold live work
/// through the early epochs where the scripted faults land.
fn failing_trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(48, seed);
    cfg.duration = SimDuration::from_secs(60);
    cfg.job_scale = 0.5;
    WorkloadTrace::generate(&cfg)
}

/// Crash placements tried in order until one strands live work. Which
/// node holds jobs at a given epoch depends on the seed's arrival
/// pattern, so a single fixed placement would make the drain check
/// vacuous for some seeds; the probe keeps the gate meaningful for any
/// `--seed` while staying fully deterministic (fixed candidate order,
/// first hit wins). Node2 is skipped — it carries the scripted stall.
const CRASH_CANDIDATES: [(u16, u64); 9] = [
    (3, 6),
    (1, 6),
    (3, 10),
    (1, 10),
    (0, 10),
    (3, 14),
    (1, 14),
    (0, 14),
    (3, 20),
];

/// Extracts the u64 after `"key":` in a JSONL trace line, if present.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Replays the fleet journal in sequence order and asserts the fencing
/// contract: between a node's `node_fenced` and its `node_recovered`,
/// no `fleet_route` line may name it (re-dispatch hops included via
/// `job_redispatch`'s `to` field).
fn check_fencing_journal(journal: &str, out: &mut Vec<Violation>) {
    let mut fenced: BTreeSet<u64> = BTreeSet::new();
    for line in journal.lines() {
        if line.contains("\"kind\":\"node_fenced\"") {
            if let Some(n) = field_u64(line, "node") {
                fenced.insert(n);
            }
        } else if line.contains("\"kind\":\"node_recovered\"") {
            if let Some(n) = field_u64(line, "node") {
                fenced.remove(&n);
            }
        } else if line.contains("\"kind\":\"fleet_route\"") {
            if let Some(n) = field_u64(line, "node") {
                if fenced.contains(&n) {
                    out.push(violation(
                        "fleet-fencing",
                        format!("node{n}"),
                        format!("fleet_route named a fenced node: {line}"),
                    ));
                }
            }
        } else if line.contains("\"kind\":\"job_redispatch\"")
            && line.contains("\"outcome\":\"reassigned\"")
        {
            if let Some(n) = field_u64(line, "to") {
                if fenced.contains(&n) {
                    out.push(violation(
                        "fleet-fencing",
                        format!("node{n}"),
                        format!("job_redispatch reassigned onto a fenced node: {line}"),
                    ));
                }
            }
        }
    }
}

/// Scripted degrade/crash/stall run: conservation and exactly-once must
/// hold at every epoch and at the end, re-dispatch must actually move
/// work, fenced nodes must get zero new work (proved from the journal),
/// and the whole thing must stay worker-count deterministic.
fn check_resilience(seed: u64, out: &mut Vec<Violation>) {
    let t = failing_trace(seed);
    let mut chosen = None;
    for &(node, epoch) in &CRASH_CANDIDATES {
        let crash = ScriptedFault {
            epoch,
            node: NodeId(node),
            kind: NodeFaultKind::Crash,
        };
        let s = Fleet::builder()
            .config(failing_cluster(1, seed, crash))
            .build()
            .run(&t, &mut EnergyAware::new());
        if s.redispatch.drained > 0 && s.redispatch.reassigned > 0 {
            chosen = Some((crash, s));
            break;
        }
    }
    let Some((crash, one)) = chosen else {
        out.push(violation(
            "fleet-resilience",
            "re-dispatch".to_string(),
            format!(
                "no scripted crash in {CRASH_CANDIDATES:?} stranded+reassigned live work \
                 for seed {seed:#x} — the drain path went unexercised"
            ),
        ));
        return;
    };

    if one.faults.crashes != 1 || one.faults.stalls != 1 || one.faults.degrades != 1 {
        out.push(violation(
            "fleet-resilience",
            "scripted faults".to_string(),
            format!("expected one fault of each kind, applied {:?}", one.faults),
        ));
    }
    if one.duplicate_completions != 0 || one.lost_jobs != 0 {
        out.push(violation(
            "fleet-exactly-once",
            "scripted faults".to_string(),
            format!(
                "lost={} duplicated={}",
                one.lost_jobs, one.duplicate_completions
            ),
        ));
    }
    if !one.conserves_jobs() {
        out.push(violation(
            "fleet-conservation",
            "scripted faults".to_string(),
            format!(
                "admission={:?} completed={} redispatch={:?}",
                one.admission, one.completed, one.redispatch
            ),
        ));
    }
    for audit in one.failed_audits() {
        out.push(violation(
            "fleet-conservation",
            format!("epoch {}", audit.epoch),
            format!("per-epoch ledger broke: {audit:?}"),
        ));
    }
    check_fencing_journal(one.journal.as_deref().unwrap_or(""), out);

    let four = Fleet::builder()
        .config(failing_cluster(4, seed, crash))
        .build()
        .run(&t, &mut EnergyAware::new());
    if one.fingerprint() != four.fingerprint() || one.journal != four.journal {
        out.push(violation(
            "fleet-determinism",
            "scripted faults".to_string(),
            "failure run diverged between 1 and 4 workers".to_string(),
        ));
    }
}

/// Overload run with tiny admission bounds: the journal's `fleet_shed`
/// count and the summary's shed counters are incremented together on the
/// single shed path, so they must agree exactly.
fn check_shed_accounting(seed: u64, out: &mut Vec<Violation>) {
    let mut cfg = cluster(1, seed);
    for n in &mut cfg.nodes {
        n.admit_capacity = 1;
    }
    let mut gen = GeneratorConfig::paper_default(48, seed);
    gen.duration = SimDuration::from_secs(30);
    gen.job_scale = 0.6;
    let summary = Fleet::builder()
        .config(cfg)
        .build()
        .run(&WorkloadTrace::generate(&gen), &mut RoundRobin::new());
    let shed = summary.admission.shed();
    if shed == 0 {
        out.push(violation(
            "fleet-shed-accounting",
            "overload run".to_string(),
            "capacity-1 cluster shed nothing — check is vacuous".to_string(),
        ));
    }
    let traced = summary
        .journal
        .as_deref()
        .unwrap_or("")
        .lines()
        .filter(|l| l.contains("\"kind\":\"fleet_shed\""))
        .count() as u64;
    if traced != shed {
        out.push(violation(
            "fleet-shed-accounting",
            "overload run".to_string(),
            format!("journal saw {traced} sheds, summary counted {shed}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_checks_are_clean() {
        let report = explore(0xF1EE7);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.submitted > 0);
    }
}
