//! Dynamic fleet checks: cluster-level invariants and the worker-count
//! determinism contract.
//!
//! The fleet layer promises that (a) the cluster front door never loses
//! a job — every submission is admitted or shed, and every admitted job
//! completes once the fleet drains; (b) per-node daemons stay inside
//! their safety envelope under cluster-induced load patterns (batched
//! epoch admissions, oversubscription); and (c) results are
//! byte-identical for any worker count. This module replays one seeded
//! mixed-cluster workload under each built-in routing policy and
//! asserts all three, reporting violations as data the same way the
//! static invariants do.

use crate::invariant::Violation;
use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetSummary, LeastQueued, NodeConfig, NodeKind, RoundRobin,
    RoutingPolicy,
};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};
use std::fmt;

/// Outcome of one fleet exploration run.
#[derive(Debug)]
pub struct FleetReport {
    /// Policies exercised.
    pub policies: Vec<&'static str>,
    /// Jobs submitted per policy run (identical trace each time).
    pub submitted: u64,
    /// Violations found across all runs.
    pub violations: Vec<Violation>,
}

impl FleetReport {
    /// True when no run violated a fleet invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet: {} policies x {} jobs, {} violation(s)",
            self.policies.len(),
            self.submitted,
            self.violations.len()
        )
    }
}

fn violation(name: &'static str, location: String, message: String) -> Violation {
    Violation {
        invariant: name,
        location,
        message,
    }
}

/// The small mixed cluster every check runs against.
fn cluster(workers: usize, seed: u64) -> FleetConfig {
    let nodes = vec![
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(1)),
        NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(2)),
        NodeConfig::new(NodeKind::XGene3, seed.wrapping_add(3)),
    ];
    let mut cfg = FleetConfig::new(nodes);
    cfg.workers = workers;
    cfg.telemetry = true;
    cfg
}

fn trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(48, seed);
    cfg.duration = SimDuration::from_secs(60);
    cfg.job_scale = 0.3;
    WorkloadTrace::generate(&cfg)
}

/// Per-summary invariants: conservation, safety, aggregate consistency.
fn check_summary(policy: &'static str, s: &FleetSummary, out: &mut Vec<Violation>) {
    let a = s.admission;
    if a.submitted != a.admitted + a.shed_full + a.shed_unroutable {
        out.push(violation(
            "fleet-conservation",
            format!("policy {policy}"),
            format!(
                "submitted {} != admitted {} + shed {}",
                a.submitted,
                a.admitted,
                a.shed()
            ),
        ));
    }
    if !s.conserves_jobs() {
        out.push(violation(
            "fleet-conservation",
            format!("policy {policy}"),
            format!(
                "admitted {} but completed {} after drain",
                a.admitted, s.completed
            ),
        ));
    }
    if s.failures != 0 || s.unsafe_time_s > 0.0 {
        out.push(violation(
            "fleet-safety",
            format!("policy {policy}"),
            format!(
                "cluster ran unsafely: failures={} unsafe_time={}s",
                s.failures, s.unsafe_time_s
            ),
        ));
    }
    let node_energy: f64 = s.nodes.iter().map(|n| n.metrics.energy_j).sum();
    if (node_energy - s.cluster_energy_j).abs() > 1e-6 * s.cluster_energy_j.max(1.0) {
        out.push(violation(
            "fleet-aggregation",
            format!("policy {policy}"),
            format!(
                "cluster energy {} != sum of node energies {}",
                s.cluster_energy_j, node_energy
            ),
        ));
    }
    let max_makespan = s
        .nodes
        .iter()
        .map(|n| n.metrics.makespan)
        .max()
        .unwrap_or(SimDuration::ZERO);
    if s.cluster_makespan != max_makespan {
        out.push(violation(
            "fleet-aggregation",
            format!("policy {policy}"),
            format!(
                "cluster makespan {:?} != max node makespan {:?}",
                s.cluster_makespan, max_makespan
            ),
        ));
    }
}

/// Runs the fleet checks: every policy once, plus a 1-vs-4-worker
/// determinism pair per policy.
pub fn explore(seed: u64) -> FleetReport {
    let t = trace(seed);
    let mut violations = Vec::new();
    let policies: Vec<&'static str> = vec!["round-robin", "least-queued", "energy-aware"];
    let fresh = |name: &str| -> Box<dyn RoutingPolicy> {
        match name {
            "round-robin" => Box::new(RoundRobin::new()),
            "least-queued" => Box::new(LeastQueued::new()),
            _ => Box::new(EnergyAware::new()),
        }
    };
    let mut submitted = 0;
    for &name in &policies {
        let one = Fleet::new(&cluster(1, seed)).run(&t, fresh(name).as_mut());
        submitted = one.admission.submitted;
        check_summary(name, &one, &mut violations);
        let four = Fleet::new(&cluster(4, seed)).run(&t, fresh(name).as_mut());
        if one.fingerprint() != four.fingerprint() {
            violations.push(violation(
                "fleet-determinism",
                format!("policy {name}"),
                "summary fingerprint diverged between 1 and 4 workers".to_string(),
            ));
        }
        if one.journal != four.journal {
            violations.push(violation(
                "fleet-determinism",
                format!("policy {name}"),
                "telemetry journal diverged between 1 and 4 workers".to_string(),
            ));
        }
    }
    FleetReport {
        policies,
        submitted,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_checks_are_clean() {
        let report = explore(0xF1EE7);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.submitted > 0);
    }
}
