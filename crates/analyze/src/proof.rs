//! Exhaustive policy-safety proof (`avfs-analyze prove-policy`).
//!
//! The daemon's voltage policy is a pure function of a *finite* domain:
//! frequency class × utilized-PMD count × active-thread count ×
//! intensity class × droop-guard flag × recovery state. That makes
//! "never undervolts" a statement that can be *proved* by enumeration
//! rather than sampled by simulation: for every cell, the voltage
//! [`avfs_core::daemon::Daemon::chosen_voltage`] returns (the exact
//! chooser `replan` uses) must cover the chip's physical worst case —
//! the most voltage-sensitive workload (sensitivity +1.0) placed on the
//! `u` weakest PMDs of the chip, with the droop-excursion guard applied
//! through the same [`FaultPlan::effective_vmin`] arithmetic the fault
//! layer uses.
//!
//! Alongside safety the sweep proves EDP-monotonicity cell by cell: at
//! a fixed frequency the chosen voltage must not cost more power than
//! running the same cell at nominal (at fixed performance, less power
//! is less EDP), evaluated through the preset's calibrated
//! [`avfs_chip::power::PowerModel`].
//!
//! Thread counts range over `u..=u·cores_per_pmd`: fewer than `u`
//! threads cannot utilize `u` PMDs, and more than `u·cores_per_pmd`
//! cannot fit on them — cells outside that band are physically
//! unreachable and the characterization deliberately carries no margin
//! for them.

use std::cmp::Reverse;
use std::fmt;

use avfs_chip::chip::Chip;
use avfs_chip::fault::{FaultPlan, FaultRates};
use avfs_chip::freq::{FreqStep, FreqVminClass, FrequencyMhz};
use avfs_chip::power::{PmdLoad, PowerInputs};
use avfs_chip::topology::PmdId;
use avfs_chip::vmin::VminQuery;
use avfs_chip::voltage::Millivolts;
use avfs_core::daemon::Daemon;
use avfs_workloads::classify::IntensityClass;

/// The three frequency classes, in required-voltage order.
const FREQ_CLASSES: [FreqVminClass; 3] = [
    FreqVminClass::Divided,
    FreqVminClass::Reduced,
    FreqVminClass::Max,
];

/// Recovery-state dimension: label and whether the daemon pessimizes
/// voltage (safe mode and probation both pin to nominal).
const RECOVERY_STATES: [(&str, bool); 3] = [
    ("optimized", false),
    ("safe-mode", true),
    ("probation", true),
];

/// The voltage chooser under proof: `(freq_class, utilized_pmds,
/// threads, droop_guard, pessimize) -> voltage`.
pub type Chooser<'a> = &'a dyn Fn(FreqVminClass, usize, usize, bool, bool) -> Millivolts;

/// Proof result for one chip preset.
#[derive(Debug, Clone)]
pub struct PresetProofReport {
    /// Preset name ("X-Gene 2" / "X-Gene 3").
    pub name: String,
    /// Number of domain cells enumerated.
    pub cells: u64,
    /// The smallest `chosen - required` slack observed across all cells,
    /// in millivolts (negative iff some cell is unsafe).
    pub min_guardband_mv: i64,
    /// Unsafe or non-monotone cells, with full coordinates.
    pub violations: Vec<String>,
}

impl PresetProofReport {
    /// True when every cell proved safe and EDP-monotone.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for PresetProofReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {}: {} cells enumerated, min guardband {} mV, {} violation(s)",
            self.name,
            self.cells,
            self.min_guardband_mv,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "    UNSAFE {v}")?;
        }
        Ok(())
    }
}

/// Proof results across every preset.
#[derive(Debug, Clone)]
pub struct ProofReport {
    /// Per-preset results.
    pub presets: Vec<PresetProofReport>,
}

impl ProofReport {
    /// True when every preset proved clean.
    pub fn is_clean(&self) -> bool {
        self.presets.iter().all(PresetProofReport::is_clean)
    }

    /// Total cells enumerated across presets.
    pub fn cells(&self) -> u64 {
        self.presets.iter().map(|p| p.cells).sum()
    }
}

impl fmt::Display for ProofReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy-domain proof: {} cells across {} preset(s)",
            self.cells(),
            self.presets.len()
        )?;
        for p in &self.presets {
            write!(f, "{p}")?;
        }
        if self.is_clean() {
            writeln!(f, "  every cell proved safe and EDP-monotone")?;
        }
        Ok(())
    }
}

/// An armed droop excursion for worst-case Vmin arithmetic: rate 1.0
/// guarantees the first check opens it.
fn armed_excursion() -> FaultPlan {
    let mut plan = FaultPlan::new(
        0,
        FaultRates {
            droop: 1.0,
            ..FaultRates::ZERO
        },
    );
    plan.droop_check();
    debug_assert!(plan.droop_excursion_active());
    plan
}

/// The frequency step a cell's class runs at (the daemon's own
/// class-to-step mapping: full speed, half speed, or deep division).
fn step_for_class(fc: FreqVminClass) -> FreqStep {
    match fc {
        FreqVminClass::Max => FreqStep::MAX,
        FreqVminClass::Reduced => FreqStep::HALF,
        FreqVminClass::Divided => FreqStep::new_clamped(3),
    }
}

/// PCP power of one domain cell at the given rail voltage.
fn cell_power_w(
    chip: &Chip,
    fc: FreqVminClass,
    utilized: usize,
    threads: usize,
    class: IntensityClass,
    voltage: Millivolts,
) -> f64 {
    let spec = chip.spec();
    let freq = step_for_class(fc).frequency(FrequencyMhz::new(spec.fmax_mhz));
    let (activity, mem_traffic) = match class {
        IntensityClass::CpuIntensive => (0.9, 0.1),
        IntensityClass::MemoryIntensive => (0.45, 0.9),
    };
    let per = threads / utilized;
    let extra = threads % utilized;
    let mut pmd_loads = vec![PmdLoad::IDLE; spec.pmds() as usize];
    for (i, load) in pmd_loads.iter_mut().take(utilized).enumerate() {
        let cores = per + usize::from(i < extra);
        *load = PmdLoad {
            freq_mhz: freq.as_mhz(),
            active_cores: u8::try_from(cores).unwrap_or(u8::MAX),
            activity,
        };
    }
    chip.power_model().power_w(&PowerInputs {
        voltage,
        pmd_loads,
        mem_traffic,
    })
}

/// Proves one preset's policy over the full domain with an arbitrary
/// chooser. Split from [`prove`] so tests can feed a deliberately
/// broken chooser and watch the unsafe cells surface with coordinates.
pub fn prove_preset_with(name: &str, chip: &Chip, chooser: Chooser<'_>) -> PresetProofReport {
    let spec = chip.spec();
    let model = chip.vmin_model();
    let nominal = chip.nominal_voltage();
    let excursion = armed_excursion();

    // PMDs sorted weakest (largest static offset) first: the physical
    // worst case for any u-PMD placement.
    let mut by_weakness: Vec<PmdId> = (0..spec.pmds()).map(PmdId::new).collect();
    by_weakness.sort_by_key(|&p| Reverse(model.pmd_offset_mv(p)));

    let mut cells = 0u64;
    let mut min_guardband = i64::MAX;
    let mut violations = Vec::new();

    for fc in FREQ_CLASSES {
        for utilized in 1..=spec.pmds() as usize {
            let worst_pmds = &by_weakness[..utilized];
            for threads in utilized..=utilized * spec.cores_per_pmd as usize {
                let required_base = model.safe_vmin_on(
                    &VminQuery {
                        freq_class: fc,
                        utilized_pmds: utilized,
                        active_threads: threads,
                        workload_sensitivity: 1.0,
                    },
                    worst_pmds,
                );
                for class in [
                    IntensityClass::CpuIntensive,
                    IntensityClass::MemoryIntensive,
                ] {
                    for droop_guard in [false, true] {
                        let required = if droop_guard {
                            excursion.effective_vmin(required_base, nominal)
                        } else {
                            required_base
                        };
                        for (recovery, pessimize) in RECOVERY_STATES {
                            cells += 1;
                            let chosen = chooser(fc, utilized, threads, droop_guard, pessimize);
                            let coords = format!(
                                "{name}: fc={fc} u={utilized} t={threads} class={} droop={} recovery={recovery}",
                                match class {
                                    IntensityClass::CpuIntensive => "cpu",
                                    IntensityClass::MemoryIntensive => "mem",
                                },
                                if droop_guard { "on" } else { "off" },
                            );
                            let slack = chosen - required;
                            min_guardband = min_guardband.min(slack);
                            if slack < 0 {
                                violations.push(format!(
                                    "{coords}: chosen {} mV < required {} mV",
                                    chosen.as_mv(),
                                    required.as_mv()
                                ));
                            }
                            let p_chosen = cell_power_w(chip, fc, utilized, threads, class, chosen);
                            let p_nominal =
                                cell_power_w(chip, fc, utilized, threads, class, nominal);
                            if p_chosen > p_nominal + 1e-9 {
                                violations.push(format!(
                                    "{coords}: power at chosen {p_chosen:.3} W exceeds nominal {p_nominal:.3} W (EDP regression)"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    PresetProofReport {
        name: name.to_string(),
        cells,
        min_guardband_mv: if cells == 0 { 0 } else { min_guardband },
        violations,
    }
}

/// Proves a *supplied* policy table on one preset, through the same
/// daemon chooser the production proof uses. This is how measured
/// tables (compiled from `avfs-characterize` margin maps) get the same
/// exhaustive treatment as the model-derived characterization: install
/// the table in a daemon, enumerate the full domain.
pub fn prove_preset_with_table(
    name: &str,
    chip: &Chip,
    table: avfs_core::PolicyTable,
) -> PresetProofReport {
    let daemon = Daemon::builder(chip).table(table).build();
    let chooser = |fc: FreqVminClass, u: usize, t: usize, dg: bool, pess: bool| {
        daemon.chosen_voltage(fc, u, t, dg, pess)
    };
    prove_preset_with(name, chip, &chooser)
}

/// Proves the production policy (the `optimal` daemon's chooser) over
/// both presets.
pub fn prove() -> ProofReport {
    let mut presets = Vec::new();
    for (name, builder) in [
        ("X-Gene 2", avfs_chip::presets::xgene2()),
        ("X-Gene 3", avfs_chip::presets::xgene3()),
    ] {
        let chip = builder.build();
        let daemon = Daemon::optimal(&chip);
        let chooser = |fc: FreqVminClass, u: usize, t: usize, dg: bool, pess: bool| {
            daemon.chosen_voltage(fc, u, t, dg, pess)
        };
        presets.push(prove_preset_with(name, &chip, &chooser));
    }
    ProofReport { presets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_policy_proves_clean_on_both_presets() {
        let report = prove();
        assert!(report.is_clean(), "{report}");
        assert!(report.presets.iter().all(|p| p.min_guardband_mv >= 0));
    }

    #[test]
    fn cell_counts_cover_the_exact_domain() {
        // 3 fc × Σ_{u=1..pmds}(u·cpp − u + 1) threads × 2 classes ×
        // 2 droop × 3 recovery.
        let report = prove();
        let expect = |pmds: usize, cpp: usize| -> u64 {
            let thread_cells: usize = (1..=pmds).map(|u| u * cpp - u + 1).sum();
            (3 * thread_cells * 2 * 2 * 3) as u64
        };
        assert_eq!(report.presets[0].cells, expect(4, 2), "X-Gene 2");
        assert_eq!(report.presets[1].cells, expect(16, 2), "X-Gene 3");
        assert_eq!(
            report.cells(),
            report.presets[0].cells + report.presets[1].cells
        );
    }

    #[test]
    fn broken_chooser_fails_with_cell_coordinates() {
        let chip = avfs_chip::presets::xgene2().build();
        let floor = Millivolts::new(chip.spec().vreg_floor_mv);
        // A chooser that always returns the regulator floor: unsafe in
        // essentially every cell.
        let chooser = |_fc: FreqVminClass, _u: usize, _t: usize, _dg: bool, _p: bool| floor;
        let report = prove_preset_with("X-Gene 2", &chip, &chooser);
        assert!(!report.is_clean());
        assert!(report.min_guardband_mv < 0);
        let sample = &report.violations[0];
        for needle in ["fc=", "u=", "t=", "class=", "droop=", "recovery=", "chosen"] {
            assert!(sample.contains(needle), "{sample}");
        }
    }

    #[test]
    fn droop_guard_cells_demand_the_excursion_bump() {
        // A chooser that ignores the droop guard must fail exactly in
        // droop=on cells (the optimal chooser minus the emergency bump).
        let chip = avfs_chip::presets::xgene2().build();
        let daemon = Daemon::optimal(&chip);
        let chooser = |fc: FreqVminClass, u: usize, t: usize, _dg: bool, pess: bool| {
            daemon.chosen_voltage(fc, u, t, false, pess)
        };
        let report = prove_preset_with("X-Gene 2", &chip, &chooser);
        assert!(!report.is_clean());
        assert!(report.violations.iter().all(|v| v.contains("droop=on")));
    }
}
