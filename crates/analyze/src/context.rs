//! The artifacts an invariant is checked against.

use avfs_chip::chip::Chip;
use avfs_chip::freq::CppcBehavior;
use avfs_chip::presets::{self, ChipBuilder};
use avfs_chip::topology::ChipSpec;
use avfs_chip::vmin::VminTables;
use avfs_core::policy::PolicyTable;

/// Everything the invariant registry inspects for one chip configuration:
/// the spec, the *raw* Vmin tables, a built chip (whose model the
/// constructors already validated), and the characterized policy table.
///
/// Table- and policy-level invariants read the raw artifacts (`tables`,
/// `policy`) so deliberately broken ones can be injected via
/// [`AnalysisContext::with_tables`] / [`AnalysisContext::with_policy`]
/// without tripping the constructors' panics; model- and power-level
/// invariants query the built `chip`.
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    /// Human-readable configuration name for reports.
    pub name: String,
    /// The chip's static description.
    pub spec: ChipSpec,
    /// CPPC firmware behaviour.
    pub behavior: CppcBehavior,
    /// Raw calibrated Vmin tables (checked without constructing a model).
    pub tables: VminTables,
    /// The built chip, for model/power/droop queries.
    pub chip: Chip,
    /// The characterized (or injected) policy table.
    pub policy: PolicyTable,
}

impl AnalysisContext {
    /// Builds a context from a chip builder: the chip, its tables, and a
    /// freshly characterized policy table.
    pub fn from_builder(name: &str, builder: &ChipBuilder) -> Self {
        let chip = builder.build();
        let tables = chip.vmin_model().tables().clone();
        let policy = PolicyTable::from_characterization(chip.vmin_model());
        AnalysisContext {
            name: name.to_string(),
            spec: chip.spec().clone(),
            behavior: chip.behavior(),
            tables,
            chip,
            policy,
        }
    }

    /// The X-Gene 2 preset.
    pub fn xgene2() -> Self {
        Self::from_builder("X-Gene 2", &presets::xgene2())
    }

    /// The X-Gene 3 preset.
    pub fn xgene3() -> Self {
        Self::from_builder("X-Gene 3", &presets::xgene3())
    }

    /// Both presets, in paper order.
    pub fn presets() -> Vec<AnalysisContext> {
        vec![Self::xgene2(), Self::xgene3()]
    }

    /// Replaces the raw Vmin tables (for injecting broken artifacts in
    /// tests); the built chip keeps its original, validated model.
    #[must_use]
    pub fn with_tables(mut self, tables: VminTables) -> Self {
        self.tables = tables;
        self
    }

    /// Replaces the policy table (for injecting broken artifacts).
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyTable) -> Self {
        self.policy = policy;
        self
    }
}
