//! Shared state-space machinery for the bounded model checker.
//!
//! The race explorer ([`crate::race`]) samples *seeded random* schedules;
//! the model checker ([`crate::model`]) instead enumerates a *symbolic*
//! event alphabet exhaustively. This module holds what both the checker
//! and the counterexample shrinker need:
//!
//! * [`ModelEvent`] — a seedless, replayable event vocabulary. Finishes
//!   and class flips address processes by *slot* (arrival order), not
//!   pid, so a schedule prefix fully determines what each event means
//!   and any subsequence of a schedule is itself a schedule.
//! * [`World`] — the mirrored system (a real [`Chip`], a real [`Daemon`],
//!   the live process set) with deterministic event application. Every
//!   action of the daemon's plan is applied one atomic write at a time
//!   and the three torn-state properties are evaluated at every boundary,
//!   exactly as in the race explorer.
//! * [`World::fingerprint`] — the state-hash the checker's cache and the
//!   DPOR commutation check key on: rail mV, per-PMD frequency program,
//!   masks, governor, and the daemon's control state (recovery machine,
//!   droop guard, class tracker). Observational state (counters,
//!   telemetry) is deliberately excluded: two worlds with equal
//!   fingerprints transition identically under equal events.
//!
//! No wall clock, no RNG: the whole state space is a pure function of
//! the initial world and the event alphabet.

use avfs_chip::chip::Chip;
use avfs_chip::error::ChipError;
use avfs_chip::freq::FreqStep;
use avfs_chip::topology::CoreSet;
use avfs_core::daemon::Daemon;
use avfs_sched::driver::{Action, Driver, FaultNotice, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sim::time::SimTime;
use avfs_workloads::classify::IntensityClass;
use std::fmt;

/// Bound on synchronous fault→retry rounds per event (mirrors the race
/// explorer; without an armed fault plan the loop runs exactly once).
const FAULT_ROUNDS: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// One symbolic event in the model's alphabet. The vocabulary is
/// self-contained — no pids, no seeds — so any schedule (a `Vec` of
/// these) replays identically from the same initial [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelEvent {
    /// Periodic monitoring tick.
    Tick,
    /// A new process with `threads` threads of the given class arrives.
    Arrive {
        /// Thread count of the arriving process.
        threads: usize,
        /// Its intensity class (the kernel sampler reports a matching
        /// L3 rate, as in the race explorer).
        class: IntensityClass,
    },
    /// The `slot`-th live process (in arrival order) finishes.
    Finish {
        /// Index into the live process list.
        slot: usize,
    },
    /// The `slot`-th live process flips its intensity class.
    Flip {
        /// Index into the live process list.
        slot: usize,
    },
}

impl ModelEvent {
    /// Compact stable label for JSON output and schedule dumps.
    pub fn label(&self) -> String {
        match *self {
            ModelEvent::Tick => "tick".to_string(),
            ModelEvent::Arrive { threads, class } => {
                format!("arrive(threads={threads},class={})", class_label(class))
            }
            ModelEvent::Finish { slot } => format!("finish(slot={slot})"),
            ModelEvent::Flip { slot } => format!("flip(slot={slot})"),
        }
    }
}

fn class_label(class: IntensityClass) -> &'static str {
    match class {
        IntensityClass::CpuIntensive => "cpu",
        IntensityClass::MemoryIntensive => "mem",
    }
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelEvent::Tick => write!(f, "monitor tick"),
            ModelEvent::Arrive { threads, class } => {
                write!(
                    f,
                    "a {threads}-thread {}-intensive process arrives",
                    class_label(class)
                )
            }
            ModelEvent::Finish { slot } => write!(f, "the process in slot {slot} finishes"),
            ModelEvent::Flip { slot } => {
                write!(f, "the process in slot {slot} flips intensity class")
            }
        }
    }
}

/// One live process in the world's mirror of the system.
#[derive(Debug, Clone)]
struct Proc {
    pid: Pid,
    threads: usize,
    state: ProcessState,
    assigned: CoreSet,
    class: IntensityClass,
}

impl Proc {
    fn view(&self) -> ProcessView {
        ProcessView {
            pid: self.pid,
            threads: self.threads,
            state: self.state,
            assigned: self.assigned,
            l3c_per_mcycle: Some(match self.class {
                IntensityClass::CpuIntensive => 200.0,
                IntensityClass::MemoryIntensive => 15_000.0,
            }),
            class: Some(self.class),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        }
    }
}

/// What one event application did: check/action accounting, any
/// violations found at an interleaving boundary, and the write
/// *footprint* the DPOR independence filter keys on.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Atomic actions applied.
    pub actions: u64,
    /// Invariant evaluations (one before the plan, one per action).
    pub checks: u64,
    /// Torn-state property violations, in discovery order.
    pub violations: Vec<String>,
    /// The step issued at least one `SetVoltage` (the rail is global:
    /// conflicts with everything).
    pub wrote_voltage: bool,
    /// The step switched governor mode (global: conflicts with
    /// everything).
    pub wrote_governor: bool,
    /// Bitmask of PMD indices whose frequency step was written.
    pub pmd_mask: u64,
    /// Union of core bits written by pins plus the prior masks of every
    /// pinned or removed process.
    pub core_mask: u64,
    /// Bitmask (pid mod 64) of processes created, removed, pinned, or
    /// re-classified. Pids stay far below 64 within any explored bound.
    pub pid_mask: u64,
    /// The step allocated a fresh pid (arrivals order-conflict with each
    /// other: pid labels differ across orders).
    pub arrived: bool,
}

impl StepReport {
    /// Conservative write-footprint disjointness: the *necessary* filter
    /// before the checker's exact commutation test. Anything touching
    /// the global rail or governor conflicts with everything.
    pub fn footprint_disjoint(&self, other: &StepReport) -> bool {
        !self.wrote_voltage
            && !other.wrote_voltage
            && !self.wrote_governor
            && !other.wrote_governor
            && self.pmd_mask & other.pmd_mask == 0
            && self.core_mask & other.core_mask == 0
            && self.pid_mask & other.pid_mask == 0
            && !(self.arrived && other.arrived)
    }
}

/// The mirrored system the checker explores: a real chip, a real daemon,
/// and the live process set. Cloning a `World` clones the whole state,
/// so exploration can branch freely.
#[derive(Clone)]
pub struct World {
    chip: Chip,
    daemon: Daemon,
    procs: Vec<Proc>,
    governor: GovernorMode,
    next_pid: u64,
    max_procs: usize,
}

impl World {
    /// A fresh world around `chip` driven by `daemon`, admitting at most
    /// `max_procs` concurrent processes (the branching bound).
    pub fn new(chip: Chip, daemon: Daemon, max_procs: usize) -> Self {
        World {
            chip,
            daemon,
            procs: Vec::new(),
            governor: GovernorMode::Ondemand,
            next_pid: 1,
            max_procs,
        }
    }

    /// The chip under control (read-only).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Number of live processes.
    pub fn live_procs(&self) -> usize {
        self.procs.len()
    }

    fn view(&self) -> SystemView {
        let spec = self.chip.spec();
        SystemView {
            now: SimTime::ZERO,
            spec: spec.clone(),
            voltage: self.chip.voltage(),
            pmd_steps: spec
                .all_pmds()
                .map(|p| self.chip.pmd_freq_step(p).unwrap_or(FreqStep::MAX))
                .collect(),
            governor: self.governor,
            droop_alert: self.chip.droop_excursion_active(),
            processes: self.procs.iter().map(Proc::view).collect(),
        }
    }

    fn busy_cores(&self) -> CoreSet {
        self.procs
            .iter()
            .filter(|p| p.state == ProcessState::Running)
            .fold(CoreSet::EMPTY, |acc, p| acc.union(p.assigned))
    }

    /// The events enabled in this state, in a fixed deterministic order:
    /// tick, arrivals (narrow before wide, cpu before mem), finishes,
    /// flips. Arrivals are gated by core capacity and the live-process
    /// bound.
    pub fn enabled_events(&self) -> Vec<ModelEvent> {
        let mut events = vec![ModelEvent::Tick];
        let total_threads: usize = self.procs.iter().map(|p| p.threads).sum();
        let capacity = self.chip.spec().cores as usize;
        if self.procs.len() < self.max_procs {
            for threads in [1usize, 2] {
                if total_threads + threads <= capacity {
                    events.push(ModelEvent::Arrive {
                        threads,
                        class: IntensityClass::CpuIntensive,
                    });
                    events.push(ModelEvent::Arrive {
                        threads,
                        class: IntensityClass::MemoryIntensive,
                    });
                }
            }
        }
        for slot in 0..self.procs.len() {
            events.push(ModelEvent::Finish { slot });
        }
        for slot in 0..self.procs.len() {
            events.push(ModelEvent::Flip { slot });
        }
        events
    }

    /// Applies one symbolic event: updates the mirror, delivers the
    /// corresponding [`SysEvent`] to the daemon, and applies the plan one
    /// atomic action at a time with the torn-state properties evaluated
    /// at every boundary. Returns `None` when the event is not
    /// applicable in this state (out-of-range slot, no capacity) — the
    /// shrinker uses this to discard invalid schedule subsequences.
    pub fn apply_event(&mut self, event: ModelEvent) -> Option<StepReport> {
        let mut report = StepReport::default();
        let sys_event = match event {
            ModelEvent::Tick => SysEvent::MonitorTick,
            ModelEvent::Arrive { threads, class } => {
                let total_threads: usize = self.procs.iter().map(|p| p.threads).sum();
                let capacity = self.chip.spec().cores as usize;
                if self.procs.len() >= self.max_procs || total_threads + threads > capacity {
                    return None;
                }
                let pid = Pid(self.next_pid);
                self.next_pid += 1;
                self.procs.push(Proc {
                    pid,
                    threads,
                    state: ProcessState::Waiting,
                    assigned: CoreSet::EMPTY,
                    class,
                });
                report.arrived = true;
                report.pid_mask |= 1u64 << (pid.0 % 64);
                SysEvent::ProcessArrived(pid)
            }
            ModelEvent::Finish { slot } => {
                if slot >= self.procs.len() {
                    return None;
                }
                let p = self.procs.remove(slot);
                report.pid_mask |= 1u64 << (p.pid.0 % 64);
                report.core_mask |= p.assigned.bits();
                SysEvent::ProcessFinished(p.pid)
            }
            ModelEvent::Flip { slot } => {
                let p = self.procs.get_mut(slot)?;
                p.class = match p.class {
                    IntensityClass::CpuIntensive => IntensityClass::MemoryIntensive,
                    IntensityClass::MemoryIntensive => IntensityClass::CpuIntensive,
                };
                report.pid_mask |= 1u64 << (p.pid.0 % 64);
                let (pid, class) = (p.pid, p.class);
                SysEvent::ClassChanged(pid, class)
            }
        };
        self.deliver(sys_event, &mut report);
        Some(report)
    }

    /// Delivers one event to the daemon and applies its plan under
    /// interleaved checks, feeding fault notices back for a bounded
    /// number of recovery rounds (inert unless a fault plan is armed).
    fn deliver(&mut self, event: SysEvent, report: &mut StepReport) {
        let mut event = event;
        for _round in 0..=FAULT_ROUNDS {
            let view = self.view();
            let actions = self.daemon.on_event(&view, &event);
            self.check_invariants("before plan", report);
            let mut notice = None;
            for (i, action) in actions.into_iter().enumerate() {
                let outcome = self.apply_action(action, report);
                let at = format!("after {event:?} action {i} ({action:?})");
                self.check_invariants(&at, report);
                if outcome.is_some() {
                    notice = outcome;
                    break;
                }
            }
            match notice {
                Some(n) => event = SysEvent::OperationFault(n),
                None => break,
            }
        }
    }

    /// Applies one atomic action — one mailbox/CPPC/affinity write —
    /// recording its write footprint.
    fn apply_action(&mut self, action: Action, report: &mut StepReport) -> Option<FaultNotice> {
        report.actions += 1;
        match action {
            Action::SetVoltage(mv) => {
                report.wrote_voltage = true;
                match self.chip.set_voltage(mv) {
                    Ok(()) => None,
                    Err(ChipError::MailboxRefused { .. }) => Some(FaultNotice::VoltageRefused(mv)),
                    Err(ChipError::MailboxDropped) => Some(FaultNotice::VoltageDropped(mv)),
                    Err(e) => {
                        report
                            .violations
                            .push(format!("daemon requested an unprogrammable voltage: {e}"));
                        None
                    }
                }
            }
            Action::SetPmdStep(pmd, step) => {
                report.pmd_mask |= 1u64 << (pmd.index() % 64);
                if self.governor == GovernorMode::Userspace {
                    if let Err(e) = self.chip.set_pmd_freq_step(pmd, step) {
                        report
                            .violations
                            .push(format!("daemon requested an invalid step: {e}"));
                    }
                }
                None
            }
            Action::PinProcess(pid, cores) => {
                report.pid_mask |= 1u64 << (pid.0 % 64);
                report.core_mask |= cores.bits();
                if let Some(p) = self.procs.iter_mut().find(|p| p.pid == pid) {
                    report.core_mask |= p.assigned.bits();
                    p.assigned = cores;
                    p.state = ProcessState::Running;
                }
                None
            }
            Action::SetGovernor(mode) => {
                report.wrote_governor = true;
                self.governor = mode;
                None
            }
        }
    }

    /// The three torn-state properties of the race explorer, evaluated
    /// at one interleaving boundary.
    fn check_invariants(&self, at: &str, report: &mut StepReport) {
        report.checks += 1;

        // Rail within its regulated window.
        let v = self.chip.voltage();
        let (floor, nominal) = (self.chip.spec().vreg_floor_mv, self.chip.spec().nominal_mv);
        if v.as_mv() < floor || v.as_mv() > nominal {
            report
                .violations
                .push(format!("{at}: rail {v} outside [{floor}mV, {nominal}mV]"));
        }

        // No torn V/F pair: the rail covers the safe Vmin of what is
        // running right now at the frequency program right now.
        let busy = self.busy_cores();
        if !self.chip.is_voltage_safe_for(busy) {
            report.violations.push(format!(
                "{at}: torn V/F state — {v} below safe Vmin {} for busy cores {busy}",
                self.chip.current_safe_vmin(busy)
            ));
        }

        // No mid-migration mask: running masks are thread-sized and
        // pairwise disjoint.
        let mut seen = CoreSet::EMPTY;
        for p in self
            .procs
            .iter()
            .filter(|p| p.state == ProcessState::Running)
        {
            if p.assigned.len() != p.threads {
                report.violations.push(format!(
                    "{at}: {} holds {} cores for {} threads",
                    p.pid,
                    p.assigned.len(),
                    p.threads
                ));
            }
            if !seen.intersection(p.assigned).is_empty() {
                report.violations.push(format!(
                    "{at}: {} mask {} overlaps another process",
                    p.pid, p.assigned
                ));
            }
            seen = seen.union(p.assigned);
        }
    }

    /// The state-hash the checker's cache keys on: chip control state
    /// (rail, frequency program, droop flag), governor, pid allocator,
    /// every live process, and the daemon's control fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(FNV_OFFSET, self.chip.state_digest());
        h = mix(
            h,
            match self.governor {
                GovernorMode::Ondemand => 0,
                GovernorMode::Performance => 1,
                GovernorMode::Powersave => 2,
                GovernorMode::Userspace => 3,
            },
        );
        h = mix(h, self.next_pid);
        for p in &self.procs {
            h = mix(h, p.pid.0);
            h = mix(h, p.threads as u64);
            h = mix(
                h,
                match p.state {
                    ProcessState::Waiting => 0,
                    ProcessState::Running => 1,
                    ProcessState::Finished => 2,
                },
            );
            h = mix(h, p.assigned.bits());
            h = mix(
                h,
                match p.class {
                    IntensityClass::CpuIntensive => 0,
                    IntensityClass::MemoryIntensive => 1,
                },
            );
        }
        mix(h, self.daemon.control_fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;

    fn world() -> World {
        let chip = presets::xgene2().build();
        let daemon = Daemon::optimal(&chip);
        World::new(chip, daemon, 2)
    }

    #[test]
    fn fresh_world_enables_tick_and_arrivals_only() {
        let w = world();
        let events = w.enabled_events();
        assert_eq!(events[0], ModelEvent::Tick);
        assert_eq!(events.len(), 5, "{events:?}");
        assert!(events
            .iter()
            .all(|e| !matches!(e, ModelEvent::Finish { .. } | ModelEvent::Flip { .. })));
    }

    #[test]
    fn apply_is_deterministic_and_fingerprint_stable() {
        let mut a = world();
        let mut b = world();
        for ev in [
            ModelEvent::Tick,
            ModelEvent::Arrive {
                threads: 2,
                class: IntensityClass::MemoryIntensive,
            },
            ModelEvent::Flip { slot: 0 },
            ModelEvent::Finish { slot: 0 },
        ] {
            let ra = a.apply_event(ev);
            let rb = b.apply_event(ev);
            assert_eq!(ra.is_some(), rb.is_some());
            assert_eq!(a.fingerprint(), b.fingerprint(), "after {ev}");
        }
    }

    #[test]
    fn inapplicable_events_return_none() {
        let mut w = world();
        assert!(w.apply_event(ModelEvent::Finish { slot: 0 }).is_none());
        assert!(w.apply_event(ModelEvent::Flip { slot: 3 }).is_none());
        // Fill to the process bound; further arrivals are inapplicable.
        for _ in 0..2 {
            let r = w.apply_event(ModelEvent::Arrive {
                threads: 1,
                class: IntensityClass::CpuIntensive,
            });
            assert!(r.is_some());
        }
        assert!(w
            .apply_event(ModelEvent::Arrive {
                threads: 1,
                class: IntensityClass::CpuIntensive,
            })
            .is_none());
    }

    #[test]
    fn fail_safe_daemon_holds_invariants_on_a_straightline_schedule() {
        let mut w = world();
        let schedule = [
            ModelEvent::Tick,
            ModelEvent::Arrive {
                threads: 2,
                class: IntensityClass::MemoryIntensive,
            },
            ModelEvent::Tick,
            ModelEvent::Arrive {
                threads: 1,
                class: IntensityClass::CpuIntensive,
            },
            ModelEvent::Flip { slot: 0 },
            ModelEvent::Finish { slot: 1 },
            ModelEvent::Tick,
        ];
        for ev in schedule {
            if let Some(r) = w.apply_event(ev) {
                assert!(r.violations.is_empty(), "{ev}: {:?}", r.violations);
            }
        }
    }

    #[test]
    fn footprint_disjointness_is_conservative_about_globals() {
        let voltage = StepReport {
            wrote_voltage: true,
            ..StepReport::default()
        };
        let pin = StepReport {
            core_mask: 0b11,
            pid_mask: 0b10,
            ..StepReport::default()
        };
        let other_pin = StepReport {
            core_mask: 0b1100,
            pid_mask: 0b100,
            ..StepReport::default()
        };
        assert!(!voltage.footprint_disjoint(&pin));
        assert!(pin.footprint_disjoint(&other_pin));
        assert!(!pin.footprint_disjoint(&pin));
    }
}
