//! Measured-table audit (`avfs-analyze check-margins`).
//!
//! `avfs-characterize` campaigns only ever see sampled pass/fail
//! outcomes; this gate replays a compiled table against the ground truth
//! the campaign was *not* allowed to read. Per preset it:
//!
//! 1. runs a seeded campaign on a fresh chip and compiles the map with
//!    the default guardband;
//! 2. checks every measured cell's compiled voltage against the model's
//!    true worst case for that cell's region (weakest PMDs, workload
//!    sensitivity +1) — the "chosen voltage covers the crash point plus
//!    margin" acceptance, stated in its strongest form (≥ the true safe
//!    Vmin itself);
//! 3. checks droop- and frequency-class monotonicity of the full grid;
//! 4. checks the determinism contract: a second campaign from the same
//!    seed exports byte-identical JSONL, and export → import → recompile
//!    reproduces the table bit for bit;
//! 5. hands the table to [`crate::proof::prove_preset_with_table`] for
//!    the exhaustive policy-domain proof through the daemon chooser.

use std::cmp::Reverse;
use std::fmt;

use crate::proof::{self, PresetProofReport, ProofReport};
use avfs_characterize::{Campaign, CampaignConfig, MarginMap, TableCompiler};
use avfs_chip::chip::Chip;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::topology::PmdId;
use avfs_chip::vmin::{DroopClass, VminQuery};
use avfs_core::PolicyTable;

/// Default campaign seed for the CI gate (any seed must pass; this one
/// is pinned so failures are replayable).
pub const DEFAULT_SEED: u64 = 7;

const FREQ_CLASSES: [FreqVminClass; 3] = [
    FreqVminClass::Divided,
    FreqVminClass::Reduced,
    FreqVminClass::Max,
];

/// Audit result for one preset.
#[derive(Debug, Clone)]
pub struct PresetMarginReport {
    /// Preset name ("X-Gene 2" / "X-Gene 3").
    pub name: String,
    /// Measured cells in the margin map.
    pub measured_cells: u64,
    /// Total stress probes the campaign spent.
    pub probes: u64,
    /// Observations the campaign discarded as unusable.
    pub discarded: u64,
    /// Smallest `compiled - truth` slack over the measured cells, mV
    /// (negative iff some compiled cell undercuts the hidden truth).
    pub min_truth_slack_mv: i64,
    /// The exhaustive policy-domain proof with the measured table
    /// installed (absent when the campaign itself failed).
    pub proof: Option<PresetProofReport>,
    /// Everything that went wrong, with coordinates.
    pub violations: Vec<String>,
}

impl PresetMarginReport {
    /// True when the table proved safe, monotone, and deterministic.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.proof.as_ref().is_some_and(PresetProofReport::is_clean)
    }
}

impl fmt::Display for PresetMarginReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {}: {} cells measured ({} probes, {} discarded), min truth slack {} mV, {} violation(s)",
            self.name,
            self.measured_cells,
            self.probes,
            self.discarded,
            self.min_truth_slack_mv,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "    VIOLATION {v}")?;
        }
        if let Some(p) = &self.proof {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Audit results across both presets.
#[derive(Debug, Clone)]
pub struct MarginCheckReport {
    /// Campaign seed the audit ran under.
    pub seed: u64,
    /// Per-preset results.
    pub presets: Vec<PresetMarginReport>,
}

impl MarginCheckReport {
    /// True when every preset audited clean.
    pub fn is_clean(&self) -> bool {
        self.presets.iter().all(PresetMarginReport::is_clean)
    }
}

impl fmt::Display for MarginCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "measured-margin audit (seed {}): {} preset(s)",
            self.seed,
            self.presets.len()
        )?;
        for p in &self.presets {
            write!(f, "{p}")?;
        }
        if self.is_clean() {
            writeln!(
                f,
                "  every compiled cell covers the hidden truth; measured tables proved over the full domain"
            )?;
        }
        Ok(())
    }
}

/// The true worst-case safe Vmin of one measured cell's proof region:
/// the genuinely weakest `utilized` PMDs, worst-case workload.
fn cell_truth(chip: &Chip, freq_row: usize, utilized: usize, threads: usize) -> u32 {
    let model = chip.vmin_model();
    let mut by_weakness: Vec<PmdId> = (0..chip.spec().pmds()).map(PmdId::new).collect();
    by_weakness.sort_by_key(|&p| Reverse(model.pmd_offset_mv(p)));
    model
        .safe_vmin_on(
            &VminQuery {
                freq_class: FREQ_CLASSES[freq_row],
                utilized_pmds: utilized,
                active_threads: threads,
                workload_sensitivity: 1.0,
            },
            &by_weakness[..utilized],
        )
        .as_mv()
}

/// Audits one preset: campaign, truth replay, monotonicity, determinism,
/// full-domain proof.
fn check_preset(
    name: &str,
    build: avfs_chip::presets::ChipBuilder,
    seed: u64,
) -> PresetMarginReport {
    let mut violations = Vec::new();
    let campaign = Campaign::new(CampaignConfig::new(seed));
    let mut chip = build.clone().build();
    let map = match campaign.run(&mut chip) {
        Ok(map) => map,
        Err(e) => {
            return PresetMarginReport {
                name: name.to_string(),
                measured_cells: 0,
                probes: 0,
                discarded: 0,
                min_truth_slack_mv: 0,
                proof: None,
                violations: vec![format!("campaign aborted on a fault-free chip: {e}")],
            }
        }
    };
    let table = match TableCompiler::default().compile(&map) {
        Ok(t) => t,
        Err(e) => {
            return PresetMarginReport {
                name: name.to_string(),
                measured_cells: map.cells.len() as u64,
                probes: map.cells.iter().map(|c| c.probes).sum(),
                discarded: map.cells.iter().map(|c| c.discarded).sum(),
                min_truth_slack_mv: 0,
                proof: None,
                violations: vec![format!("margin map failed to compile: {e}")],
            }
        }
    };

    // 2 — every measured cell's compiled voltage covers the hidden truth.
    let mut min_slack = i64::MAX;
    for cell in &map.cells {
        let truth = cell_truth(&chip, cell.freq_row, cell.utilized_pmds, cell.threads);
        let compiled = table.cell(
            FREQ_CLASSES[cell.freq_row],
            DroopClass::ALL[cell.droop_index],
            cell.bucket,
        );
        let slack = i64::from(compiled) - i64::from(truth);
        min_slack = min_slack.min(slack);
        if slack < 0 {
            violations.push(format!(
                "{name}: cell [fc {}][dc {}][bucket {}] compiled {compiled} mV < true safe Vmin {truth} mV",
                cell.freq_row, cell.droop_index, cell.bucket
            ));
        }
    }

    // 3 — monotonicity of the full compiled grid.
    for fc in FREQ_CLASSES {
        for bucket in 0..PolicyTable::THREAD_BUCKETS {
            for pair in DroopClass::ALL.windows(2) {
                if table.cell(fc, pair[0], bucket) > table.cell(fc, pair[1], bucket) {
                    violations.push(format!(
                        "{name}: droop monotonicity broken at [fc {fc}][{} -> {}][bucket {bucket}]",
                        pair[0], pair[1]
                    ));
                }
            }
        }
    }
    for dc in DroopClass::ALL {
        for bucket in 0..PolicyTable::THREAD_BUCKETS {
            let div = table.cell(FreqVminClass::Divided, dc, bucket);
            let red = table.cell(FreqVminClass::Reduced, dc, bucket);
            let max = table.cell(FreqVminClass::Max, dc, bucket);
            if !(div <= red && red <= max) {
                violations.push(format!(
                    "{name}: freq monotonicity broken at [{dc}][bucket {bucket}]: {div}/{red}/{max}"
                ));
            }
        }
    }

    // 4 — determinism: same seed → byte-identical JSONL; export →
    // import → recompile is bit-identical.
    let mut replay_chip = build.build();
    match campaign.run(&mut replay_chip) {
        Ok(replay) if replay.to_jsonl() != map.to_jsonl() => {
            violations.push(format!(
                "{name}: same-seed campaigns exported different JSONL"
            ));
        }
        Ok(_) => {}
        Err(e) => violations.push(format!("{name}: replay campaign aborted: {e}")),
    }
    match MarginMap::from_jsonl(&map.to_jsonl()) {
        Ok(imported) => match TableCompiler::default().compile(&imported) {
            Ok(recompiled) if recompiled != table => {
                violations.push(format!(
                    "{name}: recompiled imported map differs from the original table"
                ));
            }
            Ok(_) => {}
            Err(e) => violations.push(format!("{name}: imported map failed to recompile: {e}")),
        },
        Err(e) => violations.push(format!("{name}: exported JSONL failed to import: {e}")),
    }

    // 5 — exhaustive policy-domain proof with the measured table.
    let proof = proof::prove_preset_with_table(name, &chip, table);

    PresetMarginReport {
        name: name.to_string(),
        measured_cells: map.cells.len() as u64,
        probes: map.cells.iter().map(|c| c.probes).sum(),
        discarded: map.cells.iter().map(|c| c.discarded).sum(),
        min_truth_slack_mv: if map.cells.is_empty() { 0 } else { min_slack },
        proof: Some(proof),
        violations,
    }
}

/// Runs the full measured-margin audit on both presets.
pub fn check(seed: u64) -> MarginCheckReport {
    MarginCheckReport {
        seed,
        presets: vec![
            check_preset("X-Gene 2", avfs_chip::presets::xgene2(), seed),
            check_preset("X-Gene 3", avfs_chip::presets::xgene3(), seed),
        ],
    }
}

/// `prove-policy --measured`: the policy-domain proof with measured
/// tables (campaign + compile per preset) instead of the model-derived
/// characterization.
pub fn prove_measured(seed: u64) -> ProofReport {
    let mut presets = Vec::new();
    for (name, builder) in [
        ("X-Gene 2 (measured)", avfs_chip::presets::xgene2()),
        ("X-Gene 3 (measured)", avfs_chip::presets::xgene3()),
    ] {
        let mut chip = builder.build();
        let campaign = Campaign::new(CampaignConfig::new(seed));
        let table = campaign
            .run(&mut chip)
            .ok()
            .and_then(|map| TableCompiler::default().compile(&map).ok());
        match table {
            Some(table) => presets.push(proof::prove_preset_with_table(name, &chip, table)),
            None => presets.push(PresetProofReport {
                name: name.to_string(),
                cells: 0,
                min_guardband_mv: -1,
                violations: vec![format!(
                    "{name}: campaign or compile failed on a clean chip"
                )],
            }),
        }
    }
    ProofReport { presets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_audits_clean_on_both_presets() {
        let report = check(DEFAULT_SEED);
        assert!(report.is_clean(), "{report}");
        for p in &report.presets {
            assert!(p.min_truth_slack_mv >= 0);
            assert!(p.measured_cells > 0);
            let proof = p.proof.as_ref().expect("proof ran");
            assert!(proof.min_guardband_mv >= 0);
        }
    }

    #[test]
    fn measured_proof_covers_the_same_domain_as_the_preset_proof() {
        let measured = prove_measured(DEFAULT_SEED);
        let modeled = proof::prove();
        assert!(measured.is_clean(), "{measured}");
        assert_eq!(measured.cells(), modeled.cells());
    }
}
