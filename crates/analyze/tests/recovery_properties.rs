//! Property tests for the daemon's fault-recovery behaviour:
//!
//! 1. Safe mode engages on exactly the configured number of
//!    *consecutive* faults — never on fewer, no matter how fault bursts
//!    below the threshold are interleaved with healthy events.
//! 2. Leaving safe mode through probation restores the exact pre-fault
//!    voltage target: the daemon's plan is a pure function of the system
//!    view, so recovery is lossless.

use avfs_chip::presets;
use avfs_chip::topology::{CoreId, CoreSet};
use avfs_chip::voltage::Millivolts;
use avfs_core::daemon::Daemon;
use avfs_core::recovery::{FaultDecision, Recovery, RecoveryConfig, RecoveryState};
use avfs_sched::driver::{Action, Driver, FaultNotice, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sim::time::SimTime;
use avfs_workloads::classify::IntensityClass;
use proptest::prelude::*;

fn mk_view(chip: &avfs_chip::Chip, procs: Vec<ProcessView>) -> SystemView {
    SystemView {
        now: SimTime::ZERO,
        spec: chip.spec().clone(),
        voltage: chip.voltage(),
        pmd_steps: vec![avfs_chip::FreqStep::MAX; chip.spec().pmds() as usize],
        governor: GovernorMode::Userspace,
        droop_alert: false,
        processes: procs,
    }
}

/// A 2-thread running process clustered on PMD `slot`.
fn running(pid: u64, slot: u16, class: IntensityClass) -> ProcessView {
    let cores: CoreSet = [2 * slot, 2 * slot + 1]
        .into_iter()
        .map(CoreId::new)
        .collect();
    ProcessView {
        pid: Pid(pid),
        threads: 2,
        state: ProcessState::Running,
        assigned: cores,
        l3c_per_mcycle: Some(match class {
            IntensityClass::CpuIntensive => 200.0,
            IntensityClass::MemoryIntensive => 15_000.0,
        }),
        class: Some(class),
        arrived_at: SimTime::ZERO,
        stalled_until: None,
    }
}

fn last_voltage(acts: &[Action]) -> Option<Millivolts> {
    acts.iter().rev().find_map(|a| match a {
        Action::SetVoltage(v) => Some(*v),
        _ => None,
    })
}

proptest! {
    /// The state machine alone: bursts strictly below the threshold,
    /// separated by healthy events, never engage safe mode; the k-th
    /// consecutive fault always does.
    #[test]
    fn safe_mode_engages_at_exactly_k_and_never_fewer(
        k in 1u32..7,
        clean_runs in collection::vec(0u32..5, 0..6),
        seed in 0u64..1000,
    ) {
        let cfg = RecoveryConfig {
            safe_mode_threshold: k,
            ..RecoveryConfig::default()
        };
        let mut r = Recovery::new(cfg, seed);
        for &cleans in &clean_runs {
            for i in 1..k {
                prop_assert!(
                    matches!(r.on_fault(), FaultDecision::Retry { .. }),
                    "fault {i} of a below-threshold burst (k={k}) must retry"
                );
            }
            let _ = r.on_clean_event();
            for _ in 0..cleans {
                let _ = r.on_clean_event();
            }
            prop_assert_eq!(r.state(), RecoveryState::Optimized);
        }
        for _ in 1..k {
            let _ = r.on_fault();
        }
        prop_assert_eq!(r.on_fault(), FaultDecision::EnterSafeMode);
        prop_assert_eq!(r.state(), RecoveryState::SafeMode);
    }

    /// The full daemon: fault bursts below the default threshold (3),
    /// each ended by a healthy event, never leave optimized planning.
    #[test]
    fn daemon_never_enters_safe_mode_below_threshold(
        bursts in collection::vec(1u32..3, 1..6),
    ) {
        let chip = presets::xgene3().build();
        let mut d = Daemon::optimal(&chip);
        let view = mk_view(
            &chip,
            vec![running(1, 0, IntensityClass::CpuIntensive)],
        );
        let _ = d.on_event(&view, &SysEvent::MonitorTick);
        let fault =
            SysEvent::OperationFault(FaultNotice::VoltageRefused(Millivolts::new(840)));
        for &n in &bursts {
            for _ in 0..n {
                let _ = d.on_event(&view, &fault);
            }
            prop_assert_eq!(d.recovery_state(), RecoveryState::Optimized);
            let _ = d.on_event(&view, &SysEvent::MonitorTick);
        }
        let k = d.config().recovery.safe_mode_threshold;
        for _ in 0..k {
            let _ = d.on_event(&view, &fault);
        }
        prop_assert_eq!(d.recovery_state(), RecoveryState::SafeMode);
    }

    /// The full daemon: for a randomized workload mix, completing the
    /// probation window restores the exact voltage target the daemon was
    /// aiming for before the fault burst.
    #[test]
    fn probation_exit_restores_the_prefault_target_exactly(
        nprocs in 1usize..5,
        mem_mask in 0u32..16,
    ) {
        let chip = presets::xgene3().build();
        let mut d = Daemon::optimal(&chip);
        let procs: Vec<ProcessView> = (0..nprocs)
            .map(|i| {
                let class = if mem_mask & (1 << i) != 0 {
                    IntensityClass::MemoryIntensive
                } else {
                    IntensityClass::CpuIntensive
                };
                running(i as u64 + 1, i as u16, class)
            })
            .collect();
        let view = mk_view(&chip, procs);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let prefault =
            last_voltage(&d.on_event(&view, &SysEvent::ProcessFinished(Pid(99))));
        prop_assert!(prefault.is_some(), "expected an undervolt target");

        let fault = SysEvent::OperationFault(FaultNotice::VoltageRefused(
            prefault.unwrap(),
        ));
        for _ in 0..d.config().recovery.safe_mode_threshold {
            let _ = d.on_event(&view, &fault);
        }
        prop_assert_eq!(d.recovery_state(), RecoveryState::SafeMode);

        let total =
            d.config().recovery.safe_hold_events + d.config().recovery.probation_events;
        let mut last = None;
        for _ in 0..total {
            if let Some(v) =
                last_voltage(&d.on_event(&view, &SysEvent::ProcessFinished(Pid(99))))
            {
                last = Some(v);
            }
        }
        prop_assert_eq!(d.recovery_state(), RecoveryState::Optimized);
        prop_assert_eq!(last, prefault);
    }
}
