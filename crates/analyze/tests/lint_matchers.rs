//! Fixture-driven tests for the lint rule matchers themselves: known
//! positives and negatives per rule, asserting *exact* hit counts so a
//! matcher that silently loosens or tightens fails here before it
//! corrupts the ratchet.

use avfs_analyze::lint::{rules, scan_source, Rule};

fn count_for(rule_name: &str, path: &str, source: &str) -> usize {
    let all: Vec<Rule> = rules();
    scan_source(&all, path, source)
        .iter()
        .filter(|f| f.rule == rule_name)
        .count()
}

const NEUTRAL_PATH: &str = "crates/core/src/daemon.rs";
const SENSITIVE_PATH: &str = "crates/telemetry/src/export.rs";

#[test]
fn unwrap_exact_counts() {
    let src = "fn f() {\n    a.unwrap();\n    b.unwrap().c.unwrap();\n    d.unwrap_or(3);\n}\n";
    assert_eq!(count_for("unwrap", NEUTRAL_PATH, src), 3);
}

#[test]
fn unwrap_ignores_comments_strings_and_test_blocks() {
    let src = "\
fn f() {
    // a.unwrap() in prose
    let s = \"b.unwrap()\";
}
#[cfg(test)]
mod tests {
    fn g() {
        c.unwrap();
        d.unwrap();
    }
}
";
    assert_eq!(count_for("unwrap", NEUTRAL_PATH, src), 0);
}

#[test]
fn expect_exact_counts() {
    let src = "fn f() {\n    a.expect(\"x\");\n    // b.expect(\"y\")\n    c.expected();\n}\n";
    assert_eq!(count_for("expect", NEUTRAL_PATH, src), 1);
}

#[test]
fn float_eq_exact_counts() {
    let src = "\
fn f() {
    if x == 0.5 {}
    if 1.25 != y {}
    if a == b {}
    if n == 5 {}
    // if z == 2.0 {}
}
";
    assert_eq!(count_for("float-eq", NEUTRAL_PATH, src), 2);
}

#[test]
fn thread_sleep_exact_counts() {
    let src = "\
fn f() {
    std::thread::sleep(d);
    thread::sleep(e);
    // thread::sleep(commented);
    let s = \"thread::sleep\";
}
";
    assert_eq!(count_for("thread-sleep", NEUTRAL_PATH, src), 2);
}

#[test]
fn narrowing_cast_needs_a_domain_word_on_the_line() {
    let src = "\
fn f() {
    let a = len as u8;
    let b = vmin_mv as u16;
    let c = freq_value as i8;
    let d = count as u16;
}
";
    assert_eq!(count_for("narrowing-cast", NEUTRAL_PATH, src), 2);
}

#[test]
fn raw_unit_param_fires_on_fn_signatures_only() {
    let src = "\
pub fn set(mv: u32) {}
struct S { margin_mv: u32 }
fn freq(mhz: u64, name: &str) {}
fn fine(v: Millivolts) {}
";
    assert_eq!(count_for("raw-unit-param", NEUTRAL_PATH, src), 2);
}

#[test]
fn wall_clock_exact_counts() {
    let src = "\
fn f() {
    let t0 = Instant::now();
    let t1 = std::time::Instant::now();
    let w = SystemTime::now();
    // Instant::now() in a comment
    let s = \"Instant::now()\";
    let ok = sim.now();
}
";
    assert_eq!(count_for("wall-clock", NEUTRAL_PATH, src), 3);
}

#[test]
fn wall_clock_is_exempt_inside_test_modules() {
    let src = "\
#[cfg(test)]
mod tests {
    fn g() {
        let t = Instant::now();
    }
}
";
    assert_eq!(count_for("wall-clock", NEUTRAL_PATH, src), 0);
}

#[test]
fn hash_order_fires_only_on_determinism_sensitive_paths() {
    let src = "\
use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
}
";
    // Line 1: one HashMap. Line 3: two HashMap. Line 4: two HashSet.
    assert_eq!(count_for("hash-order", SENSITIVE_PATH, src), 5);
    assert_eq!(count_for("hash-order", NEUTRAL_PATH, src), 0);
}

#[test]
fn hash_order_scope_covers_every_keyword() {
    let src = "use std::collections::HashMap;\n";
    for path in [
        "crates/telemetry/src/journal.rs",
        "crates/telemetry/src/export.rs",
        "crates/analyze/src/statespace.rs",
        "crates/analyze/src/jsonout.rs",
        "crates/chip/src/digest.rs",
        "crates/sim/src/trace.rs",
        "crates/core/src/fingerprint.rs",
    ] {
        assert_eq!(count_for("hash-order", path, src), 1, "{path}");
    }
    assert_eq!(
        count_for("hash-order", "crates/sched/src/driver.rs", src),
        0
    );
}

#[test]
fn btree_collections_never_fire_hash_order() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
    assert_eq!(count_for("hash-order", SENSITIVE_PATH, src), 0);
}

#[test]
fn allow_deprecated_fires_on_both_attribute_forms() {
    let src = "\
#[allow(deprecated)]
fn legacy_caller() {}
#![allow(deprecated)]
#[allow(deprecated, unused)]
fn f() {}
";
    // Outer attr, inner attr, and the combined-list form all count.
    assert_eq!(count_for("allow-deprecated", NEUTRAL_PATH, src), 3);
}

#[test]
fn allow_deprecated_ignores_comments_strings_and_test_blocks() {
    let src = "\
fn f() {
    // #[allow(deprecated)] in prose
    let s = \"#[allow(deprecated)]\";
}
#[cfg(test)]
mod tests {
    #[allow(deprecated)]
    fn legacy_equivalence() {}
}
";
    assert_eq!(count_for("allow-deprecated", NEUTRAL_PATH, src), 0);
}
