//! End-to-end tests for the bounded model checker and the policy-domain
//! prover: the clean daemon proves clean, a deliberately broken daemon
//! ordering yields a short shrunken counterexample that replays, and a
//! broken voltage chooser fails the proof with exact cell coordinates.

use avfs_analyze::model::{check, check_world, ModelOptions};
use avfs_analyze::proof::{prove, prove_preset_with};
use avfs_analyze::shrink::replay;
use avfs_analyze::statespace::World;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::voltage::Millivolts;
use avfs_core::daemon::Daemon;

fn broken_world() -> World {
    let chip = avfs_chip::presets::xgene2().build();
    let mut daemon = Daemon::optimal(&chip);
    // The ablation knob: without raise-before ordering the daemon
    // reconciles voltage lazily, so a frequency raise can land on a
    // rail still parked at the previous (lower) safe voltage.
    daemon.set_fail_safe_ordering(false);
    World::new(chip, daemon, 2)
}

#[test]
fn exhaustive_depth_six_is_clean_on_both_presets() {
    let report = check(&ModelOptions {
        depth: 6,
        max_procs: 2,
        dpor: true,
    });
    assert!(report.is_clean());
    for p in &report.presets {
        assert!(p.states > 50, "{p}");
        assert!(p.dpor_skips > 0, "{p}");
        assert!(p.reduction_factor() > 1.0, "{p}");
        assert!(p.cache_hits > 0, "{p}");
    }
}

#[test]
fn broken_ordering_yields_a_short_replayable_counterexample() {
    let root = broken_world();
    let report = check_world(
        "X-Gene 2 (fail-safe ordering off)",
        &root,
        &ModelOptions {
            depth: 6,
            max_procs: 2,
            dpor: true,
        },
    );
    let cx = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("ablated daemon must violate within depth 6: {report}"));
    assert!(!cx.violations.is_empty());
    assert!(
        cx.schedule.len() <= 8,
        "shrunken counterexample too long: {} events",
        cx.schedule.len()
    );
    assert!(cx.schedule.len() <= cx.original_len);

    // The schedule replays seedlessly from a fresh world and reproduces
    // the same class of violation.
    let replayed = replay(&root, &cx.schedule);
    assert_eq!(replayed, Some(cx.violations.clone()), "{cx}");

    // 1-minimality: dropping any single event loses the violation.
    for skip in 0..cx.schedule.len() {
        let candidate: Vec<_> = cx
            .schedule
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, &e)| e)
            .collect();
        assert!(
            replay(&root, &candidate).is_none(),
            "dropping event {skip} still reproduces"
        );
    }
}

#[test]
fn counterexample_display_is_a_replayable_recipe() {
    let root = broken_world();
    let report = check_world("ablated", &root, &ModelOptions::default());
    let cx = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("expected a counterexample"));
    let rendered = format!("{cx}");
    assert!(
        rendered.contains("replay from a fresh system"),
        "{rendered}"
    );
    assert!(rendered.contains("violated:"), "{rendered}");
    // Every step is numbered.
    for i in 1..=cx.schedule.len() {
        assert!(rendered.contains(&format!("{i}. ")), "{rendered}");
    }
}

#[test]
fn prove_policy_is_exhaustive_and_clean() {
    let report = prove();
    assert!(report.is_clean(), "{report}");
    // The exact domain sizes: 3 freq classes x sum over u of the
    // feasible thread band x 2 intensity classes x 2 droop x 3 recovery.
    assert_eq!(report.presets[0].cells, 504, "X-Gene 2");
    assert_eq!(report.presets[1].cells, 5472, "X-Gene 3");
    assert_eq!(report.cells(), 5976);
}

#[test]
fn undervolting_chooser_fails_with_coordinates() {
    let chip = avfs_chip::presets::xgene3().build();
    let daemon = Daemon::optimal(&chip);
    // Shave 30 mV off every choice: guaranteed to dip below some
    // cell's physical worst-case Vmin.
    let chooser = |fc: FreqVminClass, u: usize, t: usize, dg: bool, pess: bool| {
        daemon
            .chosen_voltage(fc, u, t, dg, pess)
            .saturating_sub(Millivolts::new(30))
    };
    let report = prove_preset_with("X-Gene 3", &chip, &chooser);
    assert!(!report.is_clean());
    assert!(report.min_guardband_mv < 0);
    let sample = &report.violations[0];
    for needle in [
        "X-Gene 3",
        "fc=",
        "u=",
        "t=",
        "droop=",
        "recovery=",
        "chosen",
    ] {
        assert!(sample.contains(needle), "{sample}");
    }
}
