//! Property tests proving the invariant registry *detects* broken
//! artifacts: for each of three invariant classes (table monotonicity,
//! guardband positivity, policy-table totality) we inject a randomized
//! corruption into an otherwise-clean preset and assert the matching
//! invariant fires, while the untouched presets stay violation-free.

use avfs_analyze::invariant::check_all;
use avfs_analyze::AnalysisContext;
use avfs_core::policy::PolicyTable;
use proptest::prelude::*;

/// Names of the invariants that fired against `cx`.
fn fired(cx: &AnalysisContext) -> Vec<&'static str> {
    let mut names: Vec<_> = check_all(cx).into_iter().map(|v| v.invariant).collect();
    names.dedup();
    names
}

fn preset(which: u8) -> AnalysisContext {
    if which.is_multiple_of(2) {
        AnalysisContext::xgene2()
    } else {
        AnalysisContext::xgene3()
    }
}

/// A full policy-table array everywhere equal to the clean preset's own
/// characterized cells, extracted through the public accessor.
fn raw_policy_cells(cx: &AnalysisContext) -> [[[u32; 4]; 4]; 3] {
    use avfs_chip::freq::FreqVminClass;
    use avfs_chip::vmin::DroopClass;
    let classes = [
        FreqVminClass::Divided,
        FreqVminClass::Reduced,
        FreqVminClass::Max,
    ];
    let mut cells = [[[0u32; 4]; 4]; 3];
    for (fi, fc) in classes.into_iter().enumerate() {
        for (di, dc) in DroopClass::ALL.into_iter().enumerate() {
            for (bucket, cell) in cells[fi][di].iter_mut().enumerate() {
                *cell = cx.policy.cell(fc, dc, bucket);
            }
        }
    }
    cells
}

#[test]
fn clean_presets_have_no_violations() {
    for cx in AnalysisContext::presets() {
        let violations = check_all(&cx);
        assert!(
            violations.is_empty(),
            "{}: unexpected violations: {violations:?}",
            cx.name
        );
    }
}

proptest! {
    /// Class 1a (monotonicity): raising a base-Vmin cell above its
    /// right-hand droop neighbour must trip the droop-monotonicity check.
    #[test]
    fn droop_monotonicity_inversions_are_detected(
        which in 0u8..2,
        fc in 0usize..3,
        dc in 0usize..3,
        delta in 1u32..60,
    ) {
        let cx = preset(which);
        let mut tables = cx.tables.clone();
        tables.base_mv[fc][dc] = tables.base_mv[fc][dc + 1] + delta;
        let broken = cx.with_tables(tables);
        prop_assert!(
            fired(&broken).contains(&"vmin-droop-monotone"),
            "inversion at base_mv[{fc}][{dc}] went undetected"
        );
    }

    /// Class 1b (monotonicity): raising a cell above the same droop
    /// column's next frequency class must trip the frequency-monotonicity
    /// check.
    #[test]
    fn freq_monotonicity_inversions_are_detected(
        which in 0u8..2,
        fc in 0usize..2,
        dc in 0usize..4,
        delta in 1u32..60,
    ) {
        let cx = preset(which);
        let mut tables = cx.tables.clone();
        tables.base_mv[fc][dc] = tables.base_mv[fc + 1][dc] + delta;
        let broken = cx.with_tables(tables);
        prop_assert!(
            fired(&broken).contains(&"vmin-freq-monotone"),
            "inversion at base_mv[{fc}][{dc}] went undetected"
        );
    }

    /// Class 2 (guardband): a non-positive unsafe-region span means the
    /// crash point coincides with the safe Vmin — must always be caught.
    #[test]
    fn collapsed_guardbands_are_detected(which in 0u8..2) {
        let cx = preset(which);
        let mut tables = cx.tables.clone();
        tables.unsafe_span_mv = 0;
        let broken = cx.with_tables(tables);
        prop_assert!(
            fired(&broken).contains(&"guardband-positive"),
            "zero unsafe span went undetected"
        );
    }

    /// Class 2, stronger form: a guardband wider than the smallest base
    /// Vmin saturates some crash point to 0mV, which is equally fatal.
    #[test]
    fn oversized_guardbands_are_detected(which in 0u8..2, extra in 1u32..200) {
        let cx = preset(which);
        let mut tables = cx.tables.clone();
        let min_base = tables.base_mv.iter().flatten().copied().min().unwrap_or(0);
        tables.unsafe_span_mv = min_base + extra;
        let broken = cx.with_tables(tables);
        prop_assert!(
            fired(&broken).contains(&"guardband-positive"),
            "guardband wider than the smallest base Vmin went undetected"
        );
    }

    /// Class 3 (totality): zeroing any single policy cell leaves an
    /// uncharacterized V/F operating point and must trip the totality
    /// check.
    #[test]
    fn missing_policy_cells_are_detected(
        which in 0u8..2,
        fc in 0usize..3,
        dc in 0usize..4,
        bucket in 0usize..4,
    ) {
        let cx = preset(which);
        let mut cells = raw_policy_cells(&cx);
        cells[fc][dc][bucket] = 0;
        let hole = PolicyTable::from_raw(
            cells,
            cx.policy.nominal().as_mv(),
            cx.spec.vreg_floor_mv,
            cx.spec.pmds() as usize,
        )
        .expect("zero holes are legal raw cells");
        let broken = cx.with_policy(hole);
        prop_assert!(
            fired(&broken).contains(&"policy-totality"),
            "missing policy cell [{fc}][{dc}][{bucket}] went undetected"
        );
    }

    /// Rebuilding the policy from its own extracted cells changes nothing:
    /// the clean round-trip stays violation-free, so the detections above
    /// are caused by the injected corruption alone.
    #[test]
    fn policy_round_trip_stays_clean(which in 0u8..2) {
        let cx = preset(which);
        let cells = raw_policy_cells(&cx);
        let rebuilt = PolicyTable::from_raw(
            cells,
            cx.policy.nominal().as_mv(),
            cx.spec.vreg_floor_mv,
            cx.spec.pmds() as usize,
        )
        .expect("extracted cells are above the floor");
        let cx = cx.with_policy(rebuilt);
        prop_assert!(fired(&cx).is_empty());
    }
}
