#!/usr/bin/env bash
# Full local gate: formatting, clippy, the avfs-analyze checks (domain
# invariants, source lints, bounded model checking, the policy-domain
# proof, the measured-margin audit, race exploration), and the test
# suite.
# Mirrors what CI would run; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
# The offline dependency shims under shims/ are checked by build + tests
# only; clippy gates the real crates. The four warn-level domain lints
# (unwrap/expect/float-cmp/truncating-cast) stay advisory here because the
# avfs-analyze lint ratchet below is their enforcement point.
cargo clippy -q --all-targets \
  -p avfs-sim -p avfs-chip -p avfs-workloads -p avfs-sched \
  -p avfs-core -p avfs-telemetry -p avfs-fleet -p avfs-characterize \
  -p avfs-experiments -p avfs-bench -p avfs-analyze \
  -- -D warnings \
  -A clippy::unwrap_used -A clippy::expect_used \
  -A clippy::float_cmp -A clippy::cast-possible-truncation

echo "==> avfs-analyze invariants"
cargo run -q -p avfs-analyze -- invariants

echo "==> avfs-analyze lint"
cargo run -q -p avfs-analyze -- lint

echo "==> avfs-analyze model (exhaustive bounded check, depth 6)"
cargo run -q --release -p avfs-analyze -- model --depth 6

echo "==> avfs-analyze prove-policy (exhaustive policy-domain proof)"
cargo run -q --release -p avfs-analyze -- prove-policy

echo "==> avfs-analyze check-margins (measured tables vs hidden ground truth + full-domain proof)"
cargo run -q --release -p avfs-analyze -- check-margins

echo "==> avfs-analyze race (160 schedules, fault-free)"
cargo run -q -p avfs-analyze -- race --schedules 160

echo "==> avfs-analyze race (96 schedules, 10% fault rate)"
cargo run -q -p avfs-analyze -- race --schedules 96 --seed 4195287042 --fault-rate 0.10

echo "==> avfs-analyze fleet (cluster invariants, fencing, exactly-once, worker determinism)"
cargo run -q --release -p avfs-analyze -- fleet

echo "==> cargo test"
cargo test -q --workspace

echo "==> resilience smoke soak (seeded fault injection)"
cargo run -q --release -p avfs-experiments --bin exp -- resilience --smoke > /dev/null

echo "==> fleet smoke (cluster eval acceptance + worker-count determinism gate)"
cargo run -q --release -p avfs-experiments --bin exp -- fleet --smoke > /dev/null

echo "==> fleet-resilience smoke (node failures: rate-0 bit-identity, crash drill, exactly-once)"
cargo run -q --release -p avfs-experiments --bin exp -- fleet-resilience --smoke > /dev/null

echo "==> characterize smoke (measured-margin reclaim, drift drill, degradation curve)"
cargo run -q --release -p avfs-experiments --bin exp -- characterize --smoke > /dev/null

echo "==> trace determinism (byte-identical journals across identical seeded runs)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q --release -p avfs-experiments --bin exp -- \
  resilience --smoke --trace "$trace_dir/a.jsonl" > /dev/null 2>&1
cargo run -q --release -p avfs-experiments --bin exp -- \
  resilience --smoke --trace "$trace_dir/b.jsonl" > /dev/null 2>&1
test -s "$trace_dir/a.jsonl"
cmp "$trace_dir/a.jsonl" "$trace_dir/b.jsonl"

echo "==> telemetry observer guard (null-path overhead within noise)"
cargo test -q --release -p avfs-bench --test observer_guard

echo "==> bench smoke gate (throughput vs BENCH_9.json, 20% tolerance)"
scripts/bench.sh --smoke

echo "==> allocation gate (zero allocations per event in steady state)"
scripts/bench.sh --alloc-gate

echo "All checks passed."
