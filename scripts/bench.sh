#!/usr/bin/env bash
# Benchmark driver around the avfs-bench harness.
#
#   scripts/bench.sh                  run the criterion suites + the
#                                     throughput harness, print the report
#   scripts/bench.sh --write          same, then refresh the committed
#                                     BENCH_9.json baseline at the repo root
#   scripts/bench.sh --smoke          throughput harness only, quick single
#                                     repetition, gated against BENCH_9.json:
#                                     any throughput metric more than 20%
#                                     below the baseline fails the run
#   scripts/bench.sh --alloc-gate     counting-allocator steady-state gate:
#                                     asserts zero allocations per event
#   scripts/bench.sh --compare FILE   A/B mode: measure, then print
#                                     per-metric deltas vs FILE (a report
#                                     written earlier with --write)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"

case "$mode" in
  --smoke)
    echo "==> throughput smoke gate (vs BENCH_9.json, 20% tolerance)"
    cargo bench -q -p avfs-bench --bench throughput -- --smoke
    ;;
  --alloc-gate)
    echo "==> counting-allocator steady-state gate"
    cargo bench -q -p avfs-bench --bench alloc_gate
    ;;
  --compare)
    baseline="${2:?usage: scripts/bench.sh --compare <baseline.json>}"
    echo "==> throughput A/B vs $baseline"
    cargo bench -q -p avfs-bench --bench throughput -- --compare "$baseline"
    ;;
  --write)
    echo "==> criterion suites"
    cargo bench -q -p avfs-bench --bench characterization
    cargo bench -q -p avfs-bench --bench tradeoffs
    cargo bench -q -p avfs-bench --bench daemon
    cargo bench -q -p avfs-bench --bench fleet
    echo "==> throughput harness (writing BENCH_9.json)"
    cargo bench -q -p avfs-bench --bench throughput -- --write
    ;;
  "")
    echo "==> criterion suites"
    cargo bench -q -p avfs-bench --bench characterization
    cargo bench -q -p avfs-bench --bench tradeoffs
    cargo bench -q -p avfs-bench --bench daemon
    cargo bench -q -p avfs-bench --bench fleet
    echo "==> throughput harness"
    cargo bench -q -p avfs-bench --bench throughput
    ;;
  *)
    echo "usage: scripts/bench.sh [--write|--smoke|--alloc-gate|--compare <baseline.json>]" >&2
    exit 2
    ;;
esac
