#!/usr/bin/env bash
# Benchmark driver around the avfs-bench harness.
#
#   scripts/bench.sh            run the criterion suites + the
#                               throughput harness, print the report
#   scripts/bench.sh --write    same, then refresh the committed
#                               BENCH_8.json baseline at the repo root
#   scripts/bench.sh --smoke    throughput harness only, quick single
#                               repetition, gated against BENCH_8.json:
#                               any throughput metric more than 20%
#                               below the baseline fails the run
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"

case "$mode" in
  --smoke)
    echo "==> throughput smoke gate (vs BENCH_8.json, 20% tolerance)"
    cargo bench -q -p avfs-bench --bench throughput -- --smoke
    ;;
  --write)
    echo "==> criterion suites"
    cargo bench -q -p avfs-bench --bench characterization
    cargo bench -q -p avfs-bench --bench tradeoffs
    cargo bench -q -p avfs-bench --bench daemon
    cargo bench -q -p avfs-bench --bench fleet
    echo "==> throughput harness (writing BENCH_8.json)"
    cargo bench -q -p avfs-bench --bench throughput -- --write
    ;;
  "")
    echo "==> criterion suites"
    cargo bench -q -p avfs-bench --bench characterization
    cargo bench -q -p avfs-bench --bench tradeoffs
    cargo bench -q -p avfs-bench --bench daemon
    cargo bench -q -p avfs-bench --bench fleet
    echo "==> throughput harness"
    cargo bench -q -p avfs-bench --bench throughput
    ;;
  *)
    echo "usage: scripts/bench.sh [--write|--smoke]" >&2
    exit 2
    ;;
esac
