//! Property-based tests on the core data structures and model
//! invariants, using proptest.

use avfs_chip::freq::{CppcBehavior, FreqStep, FreqVminClass};
use avfs_chip::presets;
use avfs_chip::topology::{CoreId, CoreSet, PmdId};
use avfs_chip::vmin::{DroopClass, VminQuery};
use avfs_core::allocation::{plan_layout, PlanProc};
use avfs_core::policy::PolicyTable;
use avfs_sched::process::Pid;
use avfs_sim::events::EventQueue;
use avfs_sim::stats::OnlineStats;
use avfs_sim::time::{cycles_in, duration_of_cycles, SimDuration, SimTime};
use avfs_workloads::classify::IntensityClass;
use avfs_workloads::perf::{PerfModel, ThreadWork};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn coreset_behaves_like_a_set(ops in proptest::collection::vec((0u16..64, any::<bool>()), 0..200)) {
        let mut cs = CoreSet::new();
        let mut model = BTreeSet::new();
        for (core, insert) in ops {
            if insert {
                prop_assert_eq!(cs.insert(CoreId::new(core)), model.insert(core));
            } else {
                prop_assert_eq!(cs.remove(CoreId::new(core)), model.remove(&core));
            }
            prop_assert_eq!(cs.len(), model.len());
        }
        let elems: Vec<u16> = cs.iter().map(|c| c.index() as u16).collect();
        let expected: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(elems, expected);
    }

    #[test]
    fn coreset_algebra_laws(a in any::<u64>(), b in any::<u64>()) {
        let x = CoreSet::from_bits(a);
        let y = CoreSet::from_bits(b);
        prop_assert_eq!(x.union(y), y.union(x));
        prop_assert_eq!(x.intersection(y), y.intersection(x));
        prop_assert_eq!(x.difference(y).intersection(y), CoreSet::EMPTY);
        prop_assert_eq!(x.union(y).len() + x.intersection(y).len(), x.len() + y.len());
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(ev) = q.pop() {
            let key = (ev.time, ev.seq);
            prop_assert!(key >= last, "events out of order");
            last = key;
        }
    }

    #[test]
    fn cycle_conversions_roundtrip(cycles in 0u64..10_000_000_000, freq in 1u32..4_000) {
        let d = duration_of_cycles(cycles, freq);
        let back = cycles_in(d, freq);
        // Round-up conversion may add at most one cycle's worth.
        prop_assert!(back >= cycles);
        prop_assert!(back <= cycles + freq as u64 / 1000 + 1);
    }

    #[test]
    fn online_stats_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let stats: OnlineStats = values.iter().copied().collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((stats.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    #[test]
    fn vmin_is_monotone_in_utilized_pmds(
        pmds_a in 1usize..=16,
        pmds_b in 1usize..=16,
        threads in 1usize..=32,
        sens in -1.0f64..=1.0,
    ) {
        let chip = presets::xgene3().build();
        let q = |pmds| VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: pmds,
            active_threads: threads,
            workload_sensitivity: sens,
        };
        let (lo, hi) = (pmds_a.min(pmds_b), pmds_a.max(pmds_b));
        prop_assert!(
            chip.vmin_model().safe_vmin(&q(lo)) <= chip.vmin_model().safe_vmin(&q(hi))
        );
    }

    #[test]
    fn vmin_is_monotone_in_freq_class(
        pmds in 1usize..=16,
        threads in 1usize..=32,
        sens in -1.0f64..=1.0,
    ) {
        let chip = presets::xgene3().build();
        let q = |fc| VminQuery {
            freq_class: fc,
            utilized_pmds: pmds,
            active_threads: threads,
            workload_sensitivity: sens,
        };
        let model = chip.vmin_model();
        prop_assert!(model.safe_vmin(&q(FreqVminClass::Divided)) <= model.safe_vmin(&q(FreqVminClass::Reduced)));
        prop_assert!(model.safe_vmin(&q(FreqVminClass::Reduced)) <= model.safe_vmin(&q(FreqVminClass::Max)));
    }

    #[test]
    fn policy_table_always_covers_the_model(
        pmds in 1usize..=16,
        extra_threads in 0usize..=16,
        sens in -1.0f64..=1.0,
        step in 1u8..=8,
    ) {
        // For any physically consistent configuration (threads ≥ utilized
        // PMDs) and any workload, the deployed policy voltage is safe.
        let chip = presets::xgene3().build();
        let table = PolicyTable::from_characterization(chip.vmin_model());
        let threads = pmds + extra_threads.min(pmds); // up to 2 per PMD
        let step = FreqStep::new(step).unwrap();
        let fc = CppcBehavior::NoBenefitBelowHalf.vmin_class(step);
        let policy_v = table.safe_voltage_for_pmds(fc, pmds, threads);
        let q = VminQuery {
            freq_class: fc,
            utilized_pmds: pmds,
            active_threads: threads,
            workload_sensitivity: sens,
        };
        // Worst PMD subset of that size.
        let worst: Vec<PmdId> = (0..pmds as u16).map(PmdId::new).collect();
        let real_v = chip.vmin_model().safe_vmin_on(&q, &worst);
        prop_assert!(policy_v >= real_v, "policy {} < real {}", policy_v, real_v);
    }

    #[test]
    fn layout_never_double_books_cores(
        spec_is_big in any::<bool>(),
        procs in proptest::collection::vec((1usize..=4, any::<bool>()), 0..12),
    ) {
        let spec = if spec_is_big {
            presets::xgene3().spec().clone()
        } else {
            presets::xgene2().spec().clone()
        };
        let plan: Vec<PlanProc> = procs
            .iter()
            .enumerate()
            .map(|(i, &(threads, is_mem))| PlanProc {
                pid: Pid(i as u64),
                threads,
                class: if is_mem {
                    IntensityClass::MemoryIntensive
                } else {
                    IntensityClass::CpuIntensive
                },
            })
            .collect();
        let layout = plan_layout(&spec, &plan);
        // No overlapping assignments.
        let mut seen = CoreSet::EMPTY;
        for cores in layout.assignment.values() {
            prop_assert!(seen.intersection(*cores).is_empty(), "double-booked cores");
            seen = seen.union(*cores);
        }
        // Every placed process has exactly its thread count.
        for p in &plan {
            if let Some(cores) = layout.assignment.get(&p.pid) {
                prop_assert_eq!(cores.len(), p.threads);
            }
        }
        // If total demand fits the chip, everything is placed.
        let demand: usize = plan.iter().map(|p| p.threads).sum();
        if demand <= spec.cores as usize {
            prop_assert!(layout.unplaced.is_empty(), "unplaced despite capacity");
        }
    }

    #[test]
    fn exec_time_monotone_in_frequency(
        core in 0.1f64..100.0,
        mem in 0.0f64..50.0,
        f1 in 300u32..3_000,
        f2 in 300u32..3_000,
        mult in 1.0f64..5.0,
    ) {
        let perf = PerfModel::xgene3();
        let work = ThreadWork { core_gcycles: core, mem_s: mem };
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        prop_assert!(perf.exec_time_s(&work, hi, mult) <= perf.exec_time_s(&work, lo, mult) + 1e-12);
    }

    #[test]
    fn pfail_is_a_probability_and_monotone(
        safe in 700u32..900,
        depth1 in 0u32..150,
        depth2 in 0u32..150,
    ) {
        let chip = presets::xgene3().build();
        let model = chip.failure_model();
        let safe_v = avfs_chip::Millivolts::new(safe);
        let (lo, hi) = (depth1.min(depth2), depth1.max(depth2));
        let p_shallow = model.pfail(
            safe_v.saturating_sub(avfs_chip::Millivolts::new(lo)),
            safe_v,
            DroopClass::D45,
        );
        let p_deep = model.pfail(
            safe_v.saturating_sub(avfs_chip::Millivolts::new(hi)),
            safe_v,
            DroopClass::D45,
        );
        prop_assert!((0.0..=1.0).contains(&p_shallow));
        prop_assert!((0.0..=1.0).contains(&p_deep));
        prop_assert!(p_deep >= p_shallow);
    }

    #[test]
    fn duration_scaling_is_linear(ms in 0u64..1_000_000, k in 0u64..1_000) {
        let d = SimDuration::from_millis(ms);
        prop_assert_eq!(d * k, SimDuration::from_millis(ms * k));
    }
}
