//! End-to-end daemon integration: the paper's configurations on the full
//! system simulator.

use avfs_chip::presets;
use avfs_core::configs::EvalConfig;
use avfs_core::daemon::Daemon;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::{SimDuration, SimTime};
use avfs_workloads::generator::{Arrival, GeneratorConfig, WorkloadTrace};
use avfs_workloads::{Benchmark, PerfModel};

fn trace(cores: usize, seed: u64, secs: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(cores, seed);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.job_scale = 0.2;
    WorkloadTrace::generate(&cfg)
}

fn run(machine_is_xg3: bool, t: &WorkloadTrace, cfg: EvalConfig) -> avfs_sched::RunMetrics {
    let (chip, perf) = if machine_is_xg3 {
        (presets::xgene3().build(), PerfModel::xgene3())
    } else {
        (presets::xgene2().build(), PerfModel::xgene2())
    };
    let mut driver = cfg.driver(&chip);
    let mut system = System::new(chip, perf, SystemConfig::default());
    system.run(t, driver.as_mut())
}

#[test]
fn optimal_never_operates_below_safe_vmin() {
    // The paper's central reliability claim, across several seeds and
    // both machines.
    for seed in [1u64, 7, 42] {
        for xg3 in [false, true] {
            let cores = if xg3 { 32 } else { 8 };
            let t = trace(cores, seed, 400);
            let m = run(xg3, &t, EvalConfig::Optimal);
            assert_eq!(m.unsafe_time_s, 0.0, "seed {seed}, xg3={xg3}");
            assert_eq!(m.failures, 0, "seed {seed}, xg3={xg3}");
        }
    }
}

#[test]
fn all_configs_complete_identical_job_sets() {
    let t = trace(8, 3, 400);
    let mut finished: Vec<usize> = Vec::new();
    for cfg in EvalConfig::ALL {
        let m = run(false, &t, cfg);
        finished.push(m.completed.len());
    }
    assert!(finished.windows(2).all(|w| w[0] == w[1]), "{finished:?}");
    assert_eq!(finished[0], t.len());
}

#[test]
fn savings_ordering_matches_the_paper_shape() {
    // Optimal saves the most; both partial configurations save something;
    // time penalties stay small.
    for xg3 in [false, true] {
        let cores = if xg3 { 32 } else { 8 };
        let t = trace(cores, 2024, 600);
        let base = run(xg3, &t, EvalConfig::Baseline);
        let safe = run(xg3, &t, EvalConfig::SafeVmin);
        let plac = run(xg3, &t, EvalConfig::Placement);
        let opt = run(xg3, &t, EvalConfig::Optimal);
        let s = |m: &avfs_sched::RunMetrics| m.energy_savings_vs(&base);
        assert!(s(&opt) > 0.12, "xg3={xg3}: optimal {:.3}", s(&opt));
        assert!(s(&safe) > 0.02, "xg3={xg3}: safe-vmin {:.3}", s(&safe));
        assert!(s(&plac) > 0.0, "xg3={xg3}: placement {:.3}", s(&plac));
        assert!(s(&opt) > s(&safe), "xg3={xg3}");
        assert!(s(&opt) > s(&plac), "xg3={xg3}");
        assert!(
            opt.time_penalty_vs(&base) < 0.08,
            "xg3={xg3}: penalty {:.3}",
            opt.time_penalty_vs(&base)
        );
        // ED2P also improves (the paper's efficiency criterion).
        assert!(opt.ed2p_savings_vs(&base) > 0.10, "xg3={xg3}");
    }
}

#[test]
fn daemon_reacts_to_class_changes_with_migration() {
    // A single memory-intensive job starts (classified CPU by default,
    // placed clustered at fmax) and must be migrated to a reduced-speed
    // PMD once the monitor classifies it.
    let t = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::SpecMilc,
            threads: 1,
            scale: 0.2,
        }],
        duration: SimDuration::from_secs(120),
    };
    let chip = presets::xgene3().build();
    let mut daemon = Daemon::optimal(&chip);
    let mut system = System::new(chip, PerfModel::xgene3(), SystemConfig::default());
    let m = system.run(&t, &mut daemon);
    assert_eq!(m.completed.len(), 1);
    assert!(m.migrations >= 1, "no migration happened");
    // The job ran (partly) at reduced frequency: makespan exceeds the
    // all-fmax solo time.
    let solo_at_fmax = PerfModel::xgene3().solo_time_s(&Benchmark::SpecMilc.profile(), 3_000) * 0.2;
    assert!(m.makespan.as_secs_f64() > solo_at_fmax * 1.05);
}

#[test]
fn cpu_jobs_keep_full_speed_under_optimal() {
    // A purely CPU-intensive job must not be slowed by the daemon.
    let t = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::SpecNamd,
            threads: 1,
            scale: 0.2,
        }],
        duration: SimDuration::from_secs(200),
    };
    let base = run(false, &t, EvalConfig::Baseline);
    let opt = run(false, &t, EvalConfig::Optimal);
    let rel = opt.makespan.as_secs_f64() / base.makespan.as_secs_f64();
    assert!((0.99..=1.02).contains(&rel), "namd slowed by {rel}");
}

#[test]
fn phased_program_is_reclassified_and_migrated() {
    // gcc alternates compute and memory phases (avfs_workloads::phases);
    // the daemon must observe the flips (event type (b) of §VI-A) and
    // re-place the process at least twice: onto a reduced-speed PMD when
    // it turns memory-intensive, and back when it turns compute-bound.
    let t = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::SpecGcc,
            threads: 1,
            scale: 0.6,
        }],
        duration: SimDuration::from_secs(300),
    };
    let chip = presets::xgene3().build();
    let mut daemon = Daemon::optimal(&chip);
    let mut system = System::new(chip, PerfModel::xgene3(), SystemConfig::default());
    let m = system.run(&t, &mut daemon);
    assert_eq!(m.completed.len(), 1);
    assert!(
        m.migrations >= 2,
        "expected phase-driven migrations, got {}",
        m.migrations
    );
    assert_eq!(m.unsafe_time_s, 0.0);
    // Both classes were observed at some point during the run.
    assert!(m.mem_class_trace.max().unwrap_or(0.0) >= 1.0);
    assert!(m.cpu_class_trace.max().unwrap_or(0.0) >= 1.0);
}

#[test]
fn steady_program_is_never_reclassified() {
    // namd has no phases: zero class-driven migrations under Optimal.
    let t = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::SpecNamd,
            threads: 1,
            scale: 0.3,
        }],
        duration: SimDuration::from_secs(300),
    };
    let m = run(true, &t, EvalConfig::Optimal);
    assert_eq!(m.completed.len(), 1);
    assert_eq!(m.migrations, 0);
}

#[test]
fn daemon_actions_are_never_rejected() {
    for seed in [5u64, 9] {
        let t = trace(32, seed, 400);
        let chip = presets::xgene3().build();
        let mut daemon = Daemon::optimal(&chip);
        let mut system = System::new(chip, PerfModel::xgene3(), SystemConfig::default());
        let _ = system.run(&t, &mut daemon);
        assert_eq!(system.rejected_actions(), 0, "seed {seed}");
    }
}

#[test]
fn daemon_is_minimally_intrusive() {
    // §VI-A: the daemon's overhead is periodic counter reads plus
    // event-driven placement. Voltage-change traffic must stay far below
    // one change per second.
    let t = trace(32, 11, 600);
    let m = run(true, &t, EvalConfig::Optimal);
    let per_second = m.voltage_changes as f64 / m.makespan.as_secs_f64();
    assert!(per_second < 1.0, "{per_second} voltage changes/s");
    // Migrations stay bounded by a small multiple of the job count.
    assert!(
        (m.migrations as usize) < 6 * m.completed.len(),
        "{} migrations for {} jobs",
        m.migrations,
        m.completed.len()
    );
}

#[test]
fn safe_vmin_is_a_single_static_undervolt() {
    let t = trace(8, 13, 300);
    let m = run(false, &t, EvalConfig::SafeVmin);
    // One voltage change at initialization, none after.
    assert_eq!(m.voltage_changes, 1);
    assert_eq!(m.unsafe_time_s, 0.0);
}

#[test]
fn placement_runs_at_nominal_voltage() {
    let t = trace(8, 17, 300);
    let m = run(false, &t, EvalConfig::Placement);
    assert_eq!(m.voltage_changes, 0);
    assert_eq!(m.unsafe_time_s, 0.0);
}
