//! Cross-crate integration: chip model + workloads + scheduler substrate.

use avfs_chip::presets;
use avfs_chip::topology::CoreSet;
use avfs_sched::driver::DefaultPolicy;
use avfs_sched::governor::GovernorMode;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::{SimDuration, SimTime};
use avfs_workloads::generator::{Arrival, GeneratorConfig, WorkloadTrace};
use avfs_workloads::{Benchmark, PerfModel};

fn xg2_system() -> System {
    System::new(
        presets::xgene2().build(),
        PerfModel::xgene2(),
        SystemConfig::default(),
    )
}

fn xg3_system() -> System {
    System::new(
        presets::xgene3().build(),
        PerfModel::xgene3(),
        SystemConfig::default(),
    )
}

fn gen_trace(cores: usize, seed: u64, secs: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(cores, seed);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.job_scale = 0.2;
    WorkloadTrace::generate(&cfg)
}

#[test]
fn full_runs_are_bit_deterministic() {
    let trace = gen_trace(8, 99, 300);
    let a = xg2_system().run(&trace, &mut DefaultPolicy::ondemand());
    let b = xg2_system().run(&trace, &mut DefaultPolicy::ondemand());
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.power_trace, b.power_trace);
    assert_eq!(a.completed, b.completed);
}

#[test]
fn energy_is_the_integral_of_power() {
    // Cross-check the scalar energy metric against the sampled power
    // trace: a 1 Hz Riemann sum should land within a few percent.
    let trace = gen_trace(8, 5, 400);
    let m = xg2_system().run(&trace, &mut DefaultPolicy::ondemand());
    let trace_sum: f64 = m.power_trace.values().iter().sum();
    let rel = (trace_sum - m.energy_j).abs() / m.energy_j;
    assert!(
        rel < 0.08,
        "trace sum {trace_sum} vs energy {} ({rel})",
        m.energy_j
    );
}

#[test]
fn both_machines_run_the_same_generator_pool() {
    let t2 = gen_trace(8, 1, 300);
    let t3 = gen_trace(32, 1, 300);
    let m2 = xg2_system().run(&t2, &mut DefaultPolicy::ondemand());
    let m3 = xg3_system().run(&t3, &mut DefaultPolicy::ondemand());
    assert_eq!(m2.completed.len(), t2.len());
    assert_eq!(m3.completed.len(), t3.len());
    // The 32-core machine draws more power at similar relative load.
    assert!(m3.avg_power_w > m2.avg_power_w);
}

#[test]
fn performance_governor_beats_powersave_on_makespan() {
    let trace = gen_trace(8, 21, 300);
    let fast = xg2_system().run(
        &trace,
        &mut DefaultPolicy::with_governor(GovernorMode::Performance),
    );
    let slow = xg2_system().run(
        &trace,
        &mut DefaultPolicy::with_governor(GovernorMode::Powersave),
    );
    assert!(
        slow.makespan > fast.makespan,
        "powersave {} !> performance {}",
        slow.makespan,
        fast.makespan
    );
    // And the trade is visible in average power.
    assert!(slow.avg_power_w < fast.avg_power_w);
}

#[test]
fn mixed_job_sizes_and_threads_all_complete() {
    let arrivals = vec![
        Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::NpbCg,
            threads: 8,
            scale: 0.1,
        },
        Arrival {
            at: SimTime::from_secs(2),
            bench: Benchmark::SpecNamd,
            threads: 1,
            scale: 0.05,
        },
        Arrival {
            at: SimTime::from_secs(4),
            bench: Benchmark::NpbEp,
            threads: 4,
            scale: 0.08,
        },
        Arrival {
            at: SimTime::from_secs(4),
            bench: Benchmark::SpecMcf,
            threads: 1,
            scale: 0.2,
        },
    ];
    let trace = WorkloadTrace {
        arrivals,
        duration: SimDuration::from_secs(300),
    };
    let mut sys = xg3_system();
    let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
    assert_eq!(m.completed.len(), 4);
    assert_eq!(sys.live_processes(), 0);
    assert_eq!(sys.rejected_actions(), 0);
}

#[test]
fn oversubscription_queues_and_eventually_drains() {
    // 3× more single-thread jobs than cores, all at t=0.
    let arrivals: Vec<Arrival> = (0..24)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            bench: if i % 2 == 0 {
                Benchmark::SpecHmmer
            } else {
                Benchmark::SpecLbm
            },
            threads: 1,
            scale: 0.05,
        })
        .collect();
    let trace = WorkloadTrace {
        arrivals,
        duration: SimDuration::from_secs(1_000),
    };
    let mut sys = xg2_system();
    let m = sys.run(&trace, &mut DefaultPolicy::ondemand());
    assert_eq!(m.completed.len(), 24);
    // Concurrency never exceeded the core count.
    assert!(m.load_trace.max().unwrap_or(0.0) <= 8.0);
}

#[test]
fn pmu_counters_reflect_execution() {
    let trace = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::SpecMilc,
            threads: 1,
            scale: 0.1,
        }],
        duration: SimDuration::from_secs(120),
    };
    let mut sys = xg2_system();
    let _ = sys.run(&trace, &mut DefaultPolicy::ondemand());
    let pmu = sys.chip().pmu();
    let total_cycles: u64 = (0..8)
        .map(|i| pmu.core(avfs_chip::CoreId::new(i)).cycles)
        .sum();
    assert!(total_cycles > 1_000_000, "cycles {total_cycles}");
    // milc is memory-intensive: the recorded L3 rate must exceed the
    // classification threshold.
    let busy_core = (0..8)
        .map(avfs_chip::CoreId::new)
        .max_by_key(|&c| pmu.core(c).cycles)
        .unwrap();
    assert!(pmu.core(busy_core).l3_per_mcycle() > 3_000.0);
}

#[test]
fn droop_counters_track_utilization_width() {
    // A full-chip run reaches the top droop band; a single-PMD run does
    // not.
    let full = WorkloadTrace {
        arrivals: (0..8)
            .map(|_| Arrival {
                at: SimTime::ZERO,
                bench: Benchmark::NpbLu,
                threads: 1,
                scale: 0.1,
            })
            .collect(),
        duration: SimDuration::from_secs(300),
    };
    let narrow = WorkloadTrace {
        arrivals: vec![Arrival {
            at: SimTime::ZERO,
            bench: Benchmark::NpbLu,
            threads: 1,
            scale: 0.1,
        }],
        duration: SimDuration::from_secs(300),
    };
    let mut sys_full = xg2_system();
    let _ = sys_full.run(&full, &mut DefaultPolicy::ondemand());
    let mut sys_narrow = xg2_system();
    let _ = sys_narrow.run(&narrow, &mut DefaultPolicy::ondemand());
    let top = avfs_chip::DroopClass::D55;
    assert!(sys_full.chip().pmu().droops().in_band(top) > 0);
    assert_eq!(sys_narrow.chip().pmu().droops().in_band(top), 0);
}

#[test]
fn nominal_runs_are_always_safe() {
    for seed in [1u64, 2, 3] {
        let trace = gen_trace(32, seed, 300);
        let m = xg3_system().run(&trace, &mut DefaultPolicy::ondemand());
        assert_eq!(m.unsafe_time_s, 0.0, "seed {seed}");
        assert_eq!(m.failures, 0, "seed {seed}");
    }
}

#[test]
fn busy_cores_reported_through_view_match_system() {
    let mut sys = xg2_system();
    let pid = sys.submit(Benchmark::SpecGcc, 2, 0.1);
    // Nothing is running until a trace/run admits it.
    assert_eq!(sys.busy_cores(), CoreSet::EMPTY);
    let _ = pid;
}
