//! Cross-artifact consistency: the experiment harnesses must agree with
//! each other the way the paper's figures agree.

use avfs_chip::vmin::DroopClass;
use avfs_experiments::{
    characterization, droops, energy, factors, perfchar, tables, Machine, Scale,
};

#[test]
fn fig3_agrees_with_table2_at_matching_configs() {
    // Figure 3's 32T@3GHz safe Vmin must sit at Table II's 830 mV row
    // (within the benchmark spread and one 5 mV search step).
    let fig3 = characterization::fig3(Machine::XGene3, Scale::Quick);
    let table2 = tables::table2();
    let t2_value = table2.value("[55mV,65mV)", "Vmin @3GHz (mV)").unwrap();
    for v in fig3.column("32T@3.0GHz") {
        assert!(
            (v - t2_value).abs() <= 15.0,
            "fig3 {v} vs table2 {t2_value}"
        );
    }
    // Half-speed column tracks the 1.5 GHz Table II row.
    let t2_half = table2.value("[55mV,65mV)", "Vmin @1.5GHz (mV)").unwrap();
    for v in fig3.column("32T@1.5GHz") {
        assert!((v - t2_half).abs() <= 15.0, "fig3 {v} vs table2 {t2_half}");
    }
}

#[test]
fn fig3_vmin_orderings() {
    // Lower frequency → lower (or equal) Vmin; fewer threads → lower Vmin.
    let t = characterization::fig3(Machine::XGene2, Scale::Quick);
    for row in &t.rows {
        let get = |col: &str| {
            let idx = t.headers.iter().position(|h| h == col).unwrap();
            row[idx].as_f64().unwrap()
        };
        assert!(get("8T@1.2GHz") <= get("8T@2.4GHz"));
        assert!(get("8T@0.9GHz") < get("8T@1.2GHz"));
        // 4T-spreaded utilizes all 4 PMDs like 8T, so its Vmin is
        // "virtually the same" (Fig. 3) — only the workload margin moves.
        assert!((get("4T(spreaded)@2.4GHz") - get("8T@2.4GHz")).abs() <= 15.0);
        // 2T-spreaded drops a droop class and sits clearly lower.
        assert!(get("2T(spreaded)@2.4GHz") <= get("4T(spreaded)@2.4GHz") + 10.0);
    }
}

#[test]
fn fig4_pmd2_is_the_most_robust_on_xgene2() {
    // The paper singles out PMD2 (cores 4,5) as the most robust and
    // PMD0/PMD1 as the most sensitive.
    let t = characterization::fig4(Scale::Quick);
    let vmin_of = |label: &str| t.value(label, "safe Vmin (max over benchmarks)").unwrap();
    assert!(vmin_of("core4") < vmin_of("core0"));
    assert!(vmin_of("core4") < vmin_of("core2"));
    assert!(vmin_of("cores4,5") < vmin_of("cores0,1"));
}

#[test]
fn fig4_two_core_vmin_not_below_single_core() {
    let t = characterization::fig4(Scale::Quick);
    let single = t.value("core0", "safe Vmin (max over benchmarks)").unwrap();
    let pair = t
        .value("cores0,1", "safe Vmin (max over benchmarks)")
        .unwrap();
    assert!(pair >= single - 10.0, "pair {pair} vs single {single}");
}

#[test]
fn fig5_curves_order_by_droop_class() {
    // At any sub-Vmin voltage, wider allocations (higher droop class)
    // fail at least as often: 8T ≥ 4T-spreaded ≥ 4T-clustered on X-Gene 2
    // at max frequency.
    let t = characterization::fig5(Machine::XGene2, Scale::Quick);
    let full = t.column("8T@2.4GHz");
    let spread = t.column("4T(spreaded)@2.4GHz");
    let clust = t.column("4T(clustered)@2.4GHz");
    for i in 0..full.len() {
        assert!(full[i] >= spread[i] - 0.12, "row {i}");
        assert!(spread[i] >= clust[i] - 0.12, "row {i}");
    }
    // And the reduced-frequency line fails last (needs deeper undervolt).
    let div = t.column("8T@0.9GHz");
    let first_failing_full = full.iter().position(|&p| p > 0.05).unwrap();
    let first_failing_div = div.iter().position(|&p| p > 0.05).unwrap();
    assert!(first_failing_div > first_failing_full);
}

#[test]
fn fig6_bands_tile_like_the_paper() {
    // The same configuration appears "hot" in its own band and "cold" one
    // band up — the diagonal structure across the two panels.
    let top = droops::fig6(DroopClass::D55, Scale::Quick);
    let mid = droops::fig6(DroopClass::D45, Scale::Quick);
    for bench in ["namd", "CG"] {
        let spread16_top = top.value(bench, "16T(spreaded)@3.0GHz").unwrap();
        let clust16_top = top.value(bench, "16T(clustered)@3.0GHz").unwrap();
        let clust16_mid = mid.value(bench, "16T(clustered)@3.0GHz").unwrap();
        assert!(spread16_top > 10.0);
        assert!(clust16_top < spread16_top / 10.0);
        assert!(
            clust16_mid > 10.0,
            "{bench}: 16T clustered quiet in its own band"
        );
    }
}

#[test]
fn fig8_and_fig9_identify_the_same_extremes() {
    let f8 = perfchar::fig8(Machine::XGene3, Scale::Quick);
    let f9 = perfchar::fig9(Machine::XGene3, Scale::Quick);
    // Benchmarks with ratio near 1 in fig8 are CPU-intensive in fig9.
    for bench in ["namd", "EP"] {
        assert!(f8.value(bench, "ratio").unwrap() > 0.9);
        assert!(f9.value(bench, "32T").unwrap() < 3_000.0);
    }
    for bench in ["CG", "milc"] {
        assert!(f8.value(bench, "ratio").unwrap() < 0.5);
        assert!(f9.value(bench, "32T").unwrap() > 3_000.0);
    }
}

#[test]
fn fig10_factors_are_consistent_with_fig3_columns() {
    let f10 = factors::fig10(Machine::XGene2);
    let f3 = characterization::fig3(Machine::XGene2, Scale::Quick);
    let division_pct = f10
        .value(
            "clock division (total below half speed)",
            "Vmin reduction (%)",
        )
        .unwrap();
    // Recompute the division percentage from fig3's own columns (mean
    // across benchmarks).
    let mean = |col: &str| {
        let v = f3.column(col);
        v.iter().sum::<f64>() / v.len() as f64
    };
    let recomputed = (mean("8T@2.4GHz") - mean("8T@0.9GHz")) / mean("8T@2.4GHz") * 100.0;
    assert!(
        (division_pct - recomputed).abs() < 2.5,
        "fig10 {division_pct}% vs fig3 {recomputed}%"
    );
}

#[test]
fn fig11_energy_and_fig12_ed2p_are_consistent() {
    // ED2P = E × T², so for a fixed benchmark/column the ratio between the
    // two tables is T² — and longer-running (lower-frequency) configs must
    // show a larger ED2P-to-energy ratio.
    let e = energy::fig11(Machine::XGene3);
    let d = energy::fig12(Machine::XGene3);
    // CPU-bound: halving frequency roughly doubles the implied delay, so
    // the ED2P/E ratio (= T²) must clearly grow.
    let t2 = |bench: &str, col: &str| d.value(bench, col).unwrap() / e.value(bench, col).unwrap();
    assert!(t2("namd", "32T@1.5GHz") > t2("namd", "32T@3.0GHz") * 2.0);
    // Memory-bound under heavy contention: delay barely moves (frequency
    // relief offsets the slower core), so the implied T² stays in a
    // narrow band around its full-speed value.
    let ratio = t2("CG", "32T@1.5GHz") / t2("CG", "32T@3.0GHz");
    assert!((0.6..=1.6).contains(&ratio), "CG T² ratio {ratio}");
}

#[test]
fn fig7_extremes_match_fig8_ordering() {
    // The benchmarks that benefit most from spreading in fig7 are the
    // memory-intensive ones of fig8.
    let f7 = energy::fig7();
    let f8 = perfchar::fig8(Machine::XGene2, Scale::Quick);
    for bench in ["CG", "FT", "milc"] {
        assert!(f7.value(bench, "difference (%)").unwrap() > 0.0, "{bench}");
        assert!(f8.value(bench, "ratio").unwrap() < 0.7, "{bench}");
    }
    for bench in ["namd", "EP"] {
        assert!(f7.value(bench, "difference (%)").unwrap() < 0.0, "{bench}");
        assert!(f8.value(bench, "ratio").unwrap() > 0.9, "{bench}");
    }
}

#[test]
fn quick_artifacts_render_to_markdown_and_csv() {
    let dir = std::env::temp_dir().join("avfs-exp-test");
    let t = tables::table1();
    assert!(t.to_markdown().contains("Table I"));
    t.write_csv(&dir).expect("csv write");
    let csv = std::fs::read_to_string(dir.join("table1.csv")).expect("csv read");
    assert!(csv.contains("Nominal voltage"));
}
